//! The evaluation driver: reachability relations, candidate enumeration, and
//! the shared relation-advancing step of the dense engines.
//!
//! Query *compilation* lives in [`super::prepared`]: a graph-independent
//! [`PreparedQuery`](super::prepared::PreparedQuery) built once per query,
//! and a cheap per-graph [`BoundPlan`](super::prepared::BoundPlan). This
//! module consumes a bound plan: per-path-variable reachability relations are
//! computed by product with the graph, candidate node assignments are
//! enumerated by a backtracking join over those relations, and each candidate
//! is verified by the convolution search of [`super::search`] (skipped for
//! plain CRPQs, for which the relaxation is exact).

pub(crate) mod cost;

use crate::error::QueryError;
use crate::eval::plan::cost::{AtomPlan, Direction};
use crate::eval::prepared::{tuple_code, BoundPlan, PreparedQuery, RelSim};
use crate::eval::search::{SearchOutcome, SearchProblem};
use crate::eval::{reference, search, Answer, EvalConfig};
use crate::query::Ecrpq;
use ecrpq_graph::{GraphDb, NodeId, Path};
use std::collections::HashMap;

/// Evaluation statistics reported alongside answers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Candidate node assignments examined.
    pub candidates: u64,
    /// Candidates that passed verification.
    pub verified: u64,
    /// Total states visited by convolution searches.
    pub search_states: u64,
    /// Compiled-automaton artifacts (relation tables, unary-constraint
    /// tables) fetched from a cache instead of being compiled for this run.
    /// Re-running a prepared query reports only hits.
    pub sim_cache_hits: u64,
    /// Compiled-automaton artifacts built fresh for this run.
    pub sim_cache_misses: u64,
}

/// What the driver should produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Head-node tuples only.
    Nodes,
    /// Stop at the first answer.
    Boolean,
    /// Full answers with witness paths.
    Paths,
}

/// Advances every relation automaton of an encoded search state on the
/// global step described by `letters` (per-variable merged-alphabet letters,
/// `None` = `⊥`), reading the current bitset rows from `cur` and writing the
/// successor rows into `next` at the offsets given by `rel_off`/`rel_blocks`.
/// Returns `false` if some relation has no matching transition. Shared by
/// the convolution search and the answer-automaton construction so the two
/// dense engines cannot drift apart.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn advance_relations(
    pq: &PreparedQuery,
    sims: &[&RelSim],
    rel_off: &[usize],
    rel_blocks: &[usize],
    letters: &[Option<ecrpq_automata::alphabet::Symbol>],
    cur: &[u64],
    rel_scratch: &mut [ecrpq_automata::sim::StateSet],
    next: &mut [u64],
) -> bool {
    for (j, r) in pq.relations.iter().enumerate() {
        let rs = sims[j];
        let (off, nb) = (rel_off[j], rel_blocks[j]);
        if r.tapes.iter().all(|&t| letters[t].is_none()) {
            // This relation's convolution has already ended; it does not
            // read ⊥-only letters.
            next[off..off + nb].copy_from_slice(&cur[off..off + nb]);
            continue;
        }
        let code = tuple_code(&r.tapes, letters, pq.alphabet_len, pq.code_base);
        let Some(sid) = rs.codes.get(code) else {
            return false; // letter not in the relation's alphabet
        };
        if !rs.sim.step_blocks_into(&cur[off..off + nb], sid, &mut rel_scratch[j]) {
            return false;
        }
        next[off..off + nb].copy_from_slice(rel_scratch[j].as_blocks());
    }
    true
}

// ---------------------------------------------------------------------------
// Reachability relations and candidate enumeration
// ---------------------------------------------------------------------------

/// The binary reachability relation of one path variable: which node pairs
/// are connected by a path whose (translated) label satisfies the variable's
/// unary constraints.
#[derive(Clone, Debug)]
pub(crate) struct ReachRel {
    /// Forward adjacency: successors of each node.
    pub fwd: Vec<Vec<NodeId>>,
    /// Backward adjacency: predecessors of each node.
    pub bwd: Vec<Vec<NodeId>>,
}

impl ReachRel {
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.fwd[u.index()].binary_search(&v).is_ok()
    }
}

/// Floor on BFS sources per worker chunk. A source costs a whole product
/// BFS (orders of magnitude more than one search-state expansion), so the
/// floor is far below the search engines' half-`min_parallel_level` — just
/// enough that a chunk's work clearly covers its thread spawn.
const MIN_SOURCES_PER_CHUNK: usize = 4;

/// Runs one independent per-source computation for every node in `sources`,
/// collecting one result row per source, in `sources` order. With
/// `options.threads > 1` (and at least `options.min_parallel_level` sources)
/// the sources are partitioned into contiguous chunks across scoped worker
/// threads through the shared fan-out of [`dense::expand_level_chunks`] —
/// the bind-time CSR and compiled constraint tables are shared read-only,
/// each worker builds its own scratch, and every source's result is
/// independent of every other's, so the output is identical at any thread
/// count.
///
/// [`dense::expand_level_chunks`]: crate::eval::dense::expand_level_chunks
fn for_each_source<Sc, MS, F>(
    sources: &[u32],
    options: crate::eval::EvalOptions,
    make_scratch: MS,
    solve: F,
) -> Vec<Vec<NodeId>>
where
    MS: Fn() -> Sc + Sync,
    F: Fn(&mut Sc, NodeId) -> Vec<NodeId> + Sync,
{
    let n = sources.len();
    let threads = options.effective_threads().min(n.max(1));
    if threads <= 1 || n < options.min_parallel_level.max(1) {
        let mut scratch = make_scratch();
        return sources.iter().map(|&u| solve(&mut scratch, NodeId(u))).collect();
    }
    let chunks = crate::eval::dense::expand_level_chunks(
        sources,
        threads,
        MIN_SOURCES_PER_CHUNK,
        Vec::new,
        |ids, out: &mut Vec<Vec<NodeId>>| {
            let mut scratch = make_scratch();
            out.reserve(ids.len());
            for &u in ids {
                out.push(solve(&mut scratch, NodeId(u)));
            }
        },
    );
    // Chunks are contiguous and in source order, so concatenation restores
    // the per-source row indexing exactly.
    chunks.concat()
}

/// Computes the reachability relation of path variable `p` over the bound
/// plan's graph, with the default plan: all-sources forward BFS. Callers on
/// the planned path use [`reachability_planned`] instead.
pub(crate) fn reachability(bound: &BoundPlan<'_>, p: usize, stats: &mut EvalStats) -> ReachRel {
    reachability_planned(bound, p, &AtomPlan::forward_full(), stats)
}

/// Computes the reachability relation of path variable `p` over the bound
/// plan's graph, following the planned strategy of `atom`.
///
/// All cases run one BFS per start node over the plan's pre-translated CSR
/// adjacency with dense `bool`/bitset visited arrays; the start nodes
/// partition across worker threads when the plan's [`EvalOptions`] ask for
/// them (see [`for_each_source`]). The constrained case steps the unary
/// constraint through its compiled simulation tables, which come from the
/// prepared query's (and, for single-projection constraints, the
/// relation's) cache — recorded in `stats` as a cache hit or miss, fetched
/// once before any worker starts.
///
/// Under [`Direction::Reverse`] the BFS walks the reverse CSR with the
/// reversed constraint automaton: a reverse walk from `t` reading the
/// reversed word visits exactly the nodes `u` with a satisfying `u → t`
/// path, so each start computes one `bwd` row and `fwd` follows by
/// transposition — the same relation, built from the side the planner
/// estimates to have the smaller frontier. A pinned atom (`atom.pin`)
/// restricts the BFS to that single start node: the planner only pins a
/// variable that is a constant in every probe of this relation, so the
/// missing rows are never read.
///
/// [`EvalOptions`]: crate::eval::EvalOptions
pub(crate) fn reachability_planned(
    bound: &BoundPlan<'_>,
    p: usize,
    atom: &AtomPlan,
    stats: &mut EvalStats,
) -> ReachRel {
    let graph = bound.graph;
    let pq = bound.pq;
    let n = graph.num_nodes();
    let options = bound.options();
    let rev = atom.dir == Direction::Reverse;
    let pinned_source: [u32; 1];
    let all_sources: Vec<u32>;
    let sources: &[u32] = match atom.pin {
        Some(c) => {
            pinned_source = [c.0];
            &pinned_source
        }
        None => {
            all_sources = (0..n as u32).collect();
            &all_sources
        }
    };
    let adj = |v: usize| if rev { bound.csr_in(v) } else { bound.csr_out(v) };
    let unary = pq.unary[p].as_ref();
    let rows: Vec<Vec<NodeId>> = match unary {
        None => {
            // Label-oblivious reachability: plain BFS with reused buffers.
            // `seen` is cleared by walking the hits, not the whole array, so
            // a sparse reach set costs O(|reach| log |reach|), not O(n).
            for_each_source(
                sources,
                options,
                || (vec![false; n], Vec::<u32>::new()),
                |(seen, stack), u| {
                    let mut hits: Vec<NodeId> = vec![u];
                    seen[u.index()] = true;
                    stack.push(u.0);
                    while let Some(v) = stack.pop() {
                        let (tos, _) = adj(v as usize);
                        for &to in tos {
                            if !seen[to as usize] {
                                seen[to as usize] = true;
                                hits.push(NodeId(to));
                                stack.push(to);
                            }
                        }
                    }
                    for h in &hits {
                        seen[h.index()] = false;
                    }
                    hits.sort_unstable();
                    hits
                },
            )
        }
        Some(u_plan) if !u_plan.dense => {
            // The constraint NFA is too big for table compilation (e.g. the
            // 30k-state intersection of several counting languages): run the
            // classical per-start product BFS, but with precomputed sparse
            // ε-closures and a dense `(node, state)` visited bitset instead
            // of per-pair hashing. A reverse plan walks the reversed
            // automaton (built per call — this arm is rare and the reversal
            // is linear in the automaton, dwarfed by the n BFS passes).
            let reversed;
            let nfa = if rev {
                reversed = u_plan.nfa.reverse();
                &reversed
            } else {
                &*u_plan.nfa
            };
            let s = nfa.num_states().max(1);
            let closures: Vec<Vec<u32>> =
                (0..s as u32).map(|q| nfa.epsilon_closure(&[q])).collect();
            let init = nfa.epsilon_closure(nfa.initial());
            // `visited` is allocated once per worker and cleared per start by
            // replaying the touched words, so a sparse BFS costs
            // O(|visited pairs|), not O(n*s/64), per start node.
            let words = (n * s).div_ceil(64).max(1);
            for_each_source(
                sources,
                options,
                || {
                    (
                        vec![0u64; words],
                        Vec::<usize>::new(),
                        vec![false; n],
                        Vec::<(u32, u32)>::new(),
                    )
                },
                |(visited, touched, result, stack), u| {
                    let mut hits: Vec<NodeId> = Vec::new();
                    for &q in &init {
                        let bit = u.index() * s + q as usize;
                        visited[bit / 64] |= 1 << (bit % 64);
                        touched.push(bit / 64);
                        stack.push((u.0, q));
                        if nfa.is_accepting(q) && !result[u.index()] {
                            result[u.index()] = true;
                            hits.push(u);
                        }
                    }
                    while let Some((v, q)) = stack.pop() {
                        let (tos, labels) = adj(v as usize);
                        for (e, &to) in tos.iter().enumerate() {
                            let sym = labels[e];
                            for (t, nq) in nfa.transitions_from(q) {
                                if *t != sym {
                                    continue;
                                }
                                for &cq in &closures[*nq as usize] {
                                    let bit = to as usize * s + cq as usize;
                                    if visited[bit / 64] >> (bit % 64) & 1 == 0 {
                                        visited[bit / 64] |= 1 << (bit % 64);
                                        touched.push(bit / 64);
                                        if nfa.is_accepting(cq) && !result[to as usize] {
                                            result[to as usize] = true;
                                            hits.push(NodeId(to));
                                        }
                                        stack.push((to, cq));
                                    }
                                }
                            }
                        }
                    }
                    for &w in touched.iter() {
                        visited[w] = 0;
                    }
                    touched.clear();
                    for h in &hits {
                        result[h.index()] = false;
                    }
                    hits.sort_unstable();
                    hits
                },
            )
        }
        Some(_) => {
            // Product of the graph with the compiled constraint tables
            // (fetched from the prepared query's cache — once, before any
            // worker starts, so the cache counters are thread-count
            // independent). A reverse plan uses the cached tables of the
            // reversed automaton.
            let sim = if rev { pq.unary_rev_sim(p, stats) } else { pq.unary_sim(p, stats) };
            let s = sim.num_states().max(1);
            // Merged symbol → dense sim symbol id (`None`: the constraint
            // never reads this label, so the edge is dead for this variable).
            let label_map: Vec<Option<u32>> = (0..bound.merged_len())
                .map(|i| sim.sym_id(&ecrpq_automata::alphabet::Symbol(i as u32)))
                .collect();
            // One BFS per start node over (node, NFA state) pairs, tracked
            // in a dense bitset of n·s bits.
            let init = sim.initial_set();
            let words = (n * s).div_ceil(64).max(1);
            for_each_source(
                sources,
                options,
                || {
                    (
                        vec![0u64; words],
                        Vec::<usize>::new(),
                        vec![false; n],
                        Vec::<(u32, u32)>::new(),
                    )
                },
                |(visited, touched, result, stack), u| {
                    let mut hits: Vec<NodeId> = Vec::new();
                    for q in init.iter() {
                        let bit = u.index() * s + q as usize;
                        visited[bit / 64] |= 1 << (bit % 64);
                        touched.push(bit / 64);
                        stack.push((u.0, q));
                        if sim.is_accepting(q) && !result[u.index()] {
                            result[u.index()] = true;
                            hits.push(u);
                        }
                    }
                    while let Some((v, q)) = stack.pop() {
                        let (tos, labels) = adj(v as usize);
                        for (e, &to) in tos.iter().enumerate() {
                            let Some(sid) = label_map[labels[e].index()] else {
                                continue;
                            };
                            let row = sim.row(q, sid);
                            for (bi, &block) in row.iter().enumerate() {
                                let mut b = block;
                                while b != 0 {
                                    let nq = bi as u32 * 64 + b.trailing_zeros();
                                    b &= b - 1;
                                    let bit = to as usize * s + nq as usize;
                                    if visited[bit / 64] >> (bit % 64) & 1 == 0 {
                                        visited[bit / 64] |= 1 << (bit % 64);
                                        touched.push(bit / 64);
                                        if sim.is_accepting(nq) && !result[to as usize] {
                                            result[to as usize] = true;
                                            hits.push(NodeId(to));
                                        }
                                        stack.push((to, nq));
                                    }
                                }
                            }
                        }
                    }
                    for &w in touched.iter() {
                        visited[w] = 0;
                    }
                    touched.clear();
                    for h in &hits {
                        result[h.index()] = false;
                    }
                    hits.sort_unstable();
                    hits
                },
            )
        }
    };
    // Scatter per-source rows into a full primary table (a pinned BFS leaves
    // every other row empty), then derive the other side by transposition.
    let mut primary: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (row, &src) in rows.into_iter().zip(sources.iter()) {
        primary[src as usize] = row;
    }
    let mut secondary: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for u in graph.nodes() {
        for &v in &primary[u.index()] {
            secondary[v.index()].push(u);
        }
    }
    for b in &mut secondary {
        b.sort_unstable();
    }
    if rev {
        ReachRel { fwd: secondary, bwd: primary }
    } else {
        ReachRel { fwd: primary, bwd: secondary }
    }
}

/// Constraint edge used during candidate enumeration: path variable `path`
/// requires `(σ(from), σ(to)) ∈ reach[path]`.
pub(crate) struct JoinEdge {
    pub(crate) path: usize,
    pub(crate) from: usize,
    pub(crate) to: usize,
}

/// All join edges of a prepared query: one per path atom, plus one per
/// repeated endpoint pair of a shared path variable.
pub(crate) fn join_edges(pq: &PreparedQuery) -> Vec<JoinEdge> {
    let mut edges: Vec<JoinEdge> = Vec::new();
    for p in 0..pq.path_vars.len() {
        edges.push(JoinEdge { path: p, from: pq.path_from[p], to: pq.path_to[p] });
    }
    for &(p, f, t) in &pq.extra_endpoints {
        edges.push(JoinEdge { path: p, from: f, to: t });
    }
    edges
}

/// Enumerates candidate node assignments consistent with the reachability
/// relations, invoking `visit` on each; `visit` returns `false` to stop.
/// `constants` are the node variables with forced values (the plan's
/// resolved constants, or the values forced by a membership check).
/// `order` is the variable enumeration order from the planner; `None` falls
/// back to the static order (used by the answer-automaton and
/// length-abstraction paths, which do not plan). Returns an error if the
/// candidate budget is exceeded.
pub(crate) fn enumerate_candidates<F: FnMut(&[NodeId]) -> bool>(
    bound: &BoundPlan<'_>,
    constants: &[(usize, NodeId)],
    reach: &[ReachRel],
    order: Option<&[usize]>,
    config: &EvalConfig,
    stats: &mut EvalStats,
    mut visit: F,
) -> Result<(), QueryError> {
    let pq = bound.pq;
    let graph = bound.graph;
    let num_vars = pq.node_vars.len();
    let edges = join_edges(pq);
    let static_fallback;
    let order: &[usize] = match order {
        Some(o) => o,
        None => {
            static_fallback = cost::static_order(pq, constants, &edges);
            &static_fallback
        }
    };

    let constants: HashMap<usize, NodeId> = constants.iter().copied().collect();
    let all_nodes: Vec<NodeId> = graph.nodes().collect();
    let mut assignment: Vec<Option<NodeId>> = vec![None; num_vars];
    let mut stop = false;

    // Recursive backtracking over the variable order. The parameters are the
    // loop-invariant pieces of the search state, threaded explicitly so the
    // recursion stays a free function.
    #[allow(clippy::too_many_arguments)]
    fn recurse<F: FnMut(&[NodeId]) -> bool>(
        depth: usize,
        order: &[usize],
        edges: &[JoinEdge],
        reach: &[ReachRel],
        constants: &HashMap<usize, NodeId>,
        all_nodes: &[NodeId],
        assignment: &mut Vec<Option<NodeId>>,
        stats: &mut EvalStats,
        config: &EvalConfig,
        visit: &mut F,
        stop: &mut bool,
    ) -> Result<(), QueryError> {
        if *stop {
            return Ok(());
        }
        if depth == order.len() {
            stats.candidates += 1;
            if stats.candidates > config.max_candidates as u64 {
                return Err(QueryError::BudgetExceeded {
                    what: format!("more than {} candidate assignments", config.max_candidates),
                });
            }
            let sigma: Vec<NodeId> = assignment.iter().map(|a| a.unwrap()).collect();
            if !visit(&sigma) {
                *stop = true;
            }
            return Ok(());
        }
        let var = order[depth];
        // Candidate values: intersect constraints from edges with the other endpoint assigned.
        let mut candidates: Option<Vec<NodeId>> = constants.get(&var).map(|&n| vec![n]);
        for e in edges {
            if e.from == var {
                if let Some(t) = assignment[e.to] {
                    let preds = &reach[e.path].bwd[t.index()];
                    candidates = Some(match candidates {
                        None => preds.clone(),
                        Some(c) => intersect_sorted(&c, preds),
                    });
                }
            }
            if e.to == var {
                if let Some(f) = assignment[e.from] {
                    let succs = &reach[e.path].fwd[f.index()];
                    candidates = Some(match candidates {
                        None => succs.clone(),
                        Some(c) => intersect_sorted(&c, succs),
                    });
                }
            }
        }
        let values = candidates.unwrap_or_else(|| all_nodes.to_vec());
        for v in values {
            // check constant consistency
            if let Some(&c) = constants.get(&var) {
                if c != v {
                    continue;
                }
            }
            assignment[var] = Some(v);
            // check fully-instantiated edges involving var
            let ok = edges.iter().all(|e| match (assignment[e.from], assignment[e.to]) {
                (Some(f), Some(t)) if e.from == var || e.to == var => reach[e.path].contains(f, t),
                _ => true,
            });
            if ok {
                recurse(
                    depth + 1,
                    order,
                    edges,
                    reach,
                    constants,
                    all_nodes,
                    assignment,
                    stats,
                    config,
                    visit,
                    stop,
                )?;
            }
            assignment[var] = None;
            if *stop {
                break;
            }
        }
        Ok(())
    }

    recurse(
        0,
        order,
        &edges,
        reach,
        &constants,
        &all_nodes,
        &mut assignment,
        stats,
        config,
        &mut visit,
        &mut stop,
    )
}

fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Which candidate-verification engine to use: the dense product engine
/// (default) or the retained reference implementation (classic cloned-state
/// BFS, kept for differential testing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Engine {
    Dense,
    Reference,
}

impl Engine {
    pub(crate) fn run(self, problem: &SearchProblem<'_>) -> Result<SearchOutcome, QueryError> {
        match self {
            // Oversized relation automata (see `dense_eligible`) make the
            // fixed-width bitset rows of the dense engine counterproductive;
            // such problems run on the sparse classical loop instead.
            Engine::Dense if problem.plan.pq.dense_search => search::run(problem),
            Engine::Dense | Engine::Reference => reference::run(problem),
        }
    }
}

/// Evaluates a query in the requested mode with an explicit engine. Both
/// engines consume the same [`PreparedQuery`].
pub(crate) fn evaluate_engine(
    query: &Ecrpq,
    graph: &GraphDb,
    config: &EvalConfig,
    mode: Mode,
    engine: Engine,
) -> Result<(Vec<Answer>, EvalStats), QueryError> {
    let prepared = PreparedQuery::prepare(query)?;
    let bound = prepared.bind(graph)?;
    bound.run_mode(config, mode, engine)
}

/// The membership check with an explicit verification engine.
pub(crate) fn check_membership_engine(
    query: &Ecrpq,
    graph: &GraphDb,
    nodes: &[NodeId],
    paths: &[Path],
    config: &EvalConfig,
    engine: Engine,
) -> Result<bool, QueryError> {
    let prepared = PreparedQuery::prepare(query)?;
    let bound = prepared.bind(graph)?;
    bound.check_engine(nodes, paths, config, engine)
}
