//! Queries with negation and quantification: the languages `CRPQ¬` and
//! `ECRPQ¬` of Section 8.1.
//!
//! Formulas are built from atoms — node equality, relational atoms
//! `(x, π, y)`, language atoms `L(π)`, and relation atoms `R(π̄)` — with
//! negation, conjunction, disjunction, and quantification over nodes and
//! paths.
//!
//! * For **CRPQ¬** (only unary language atoms), [`eval_crpq_neg`] implements
//!   the polynomial-data-complexity procedure behind Theorem 8.1(1) /
//!   Theorem 8.2(1): path quantifiers are evaluated over the finite
//!   *representative structure* `M'` of Claim 8.1.1, which keeps, for every
//!   ordered pair of nodes and every profile of the formula's languages, a
//!   bounded number of representative paths (quantifier rank + number of free
//!   path variables).
//! * For **ECRPQ¬** (relation atoms of arity ≥ 2 under negation), the paper
//!   shows evaluation is decidable but non-elementary (Theorem 8.2(2)). This
//!   engine does not implement the non-elementary automaton construction;
//!   instead, [`eval_formula_bounded`] evaluates path quantifiers over all
//!   paths up to an explicit length bound. That bounded semantics coincides
//!   with the real semantics whenever every path relevant to the formula has
//!   length at most the bound — in particular it is exact on acyclic graphs
//!   when the bound is at least the number of nodes — and the deviation is
//!   the caller's explicit choice of bound, never silent.

use crate::error::QueryError;
use crate::eval::EvalConfig;
use ecrpq_automata::alphabet::{Alphabet, Symbol};
use ecrpq_automata::dfa::Dfa;
use ecrpq_automata::nfa::Nfa;
use ecrpq_automata::relation::RegularRelation;
use ecrpq_automata::Regex;
use ecrpq_graph::{path::enumerate_paths, GraphDb, NodeId, Path};
use std::collections::{HashMap, VecDeque};

/// A formula of `ECRPQ¬` (`CRPQ¬` when no relation atom has arity ≥ 2).
#[derive(Clone, Debug)]
pub enum Formula {
    /// Node equality `x = y`.
    NodeEq(String, String),
    /// Relational atom `(x, π, y)`.
    Edge(String, String, String),
    /// Language atom `L(π)` (unary).
    Lang(String, Nfa<Symbol>),
    /// Relation atom `R(π̄)` (any arity).
    Rel(RegularRelation, Vec<String>),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Existential quantification over nodes.
    ExistsNode(String, Box<Formula>),
    /// Existential quantification over paths.
    ExistsPath(String, Box<Formula>),
    /// Universal quantification over nodes.
    ForallNode(String, Box<Formula>),
    /// Universal quantification over paths.
    ForallPath(String, Box<Formula>),
}

impl Formula {
    /// Atom `(x, π, y)`.
    pub fn edge(x: &str, path: &str, y: &str) -> Formula {
        Formula::Edge(x.to_string(), path.to_string(), y.to_string())
    }

    /// Atom `L(π)` from a regular expression.
    pub fn lang(path: &str, regex: &str, alphabet: &Alphabet) -> Result<Formula, QueryError> {
        let nfa = Regex::parse(regex)
            .map_err(|e| QueryError::Regex(e.to_string()))?
            .compile(alphabet)
            .map_err(|e| QueryError::Regex(e.to_string()))?;
        Ok(Formula::Lang(path.to_string(), nfa))
    }

    /// Atom `R(π̄)`.
    pub fn rel(relation: RegularRelation, paths: &[&str]) -> Formula {
        Formula::Rel(relation, paths.iter().map(|p| p.to_string()).collect())
    }

    /// Node equality.
    pub fn node_eq(x: &str, y: &str) -> Formula {
        Formula::NodeEq(x.to_string(), y.to_string())
    }

    /// Negation.
    // Part of the formula-building DSL (`phi.not().or(...)`); implementing
    // `std::ops::Not` would force the less readable `!phi` at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Existential node quantification.
    pub fn exists_node(var: &str, body: Formula) -> Formula {
        Formula::ExistsNode(var.to_string(), Box::new(body))
    }

    /// Existential path quantification.
    pub fn exists_path(var: &str, body: Formula) -> Formula {
        Formula::ExistsPath(var.to_string(), Box::new(body))
    }

    /// Universal node quantification.
    pub fn forall_node(var: &str, body: Formula) -> Formula {
        Formula::ForallNode(var.to_string(), Box::new(body))
    }

    /// Universal path quantification.
    pub fn forall_path(var: &str, body: Formula) -> Formula {
        Formula::ForallPath(var.to_string(), Box::new(body))
    }

    /// True if the formula belongs to `CRPQ¬`: no relation atom of arity ≥ 2.
    pub fn is_crpq_neg(&self) -> bool {
        match self {
            Formula::Rel(rel, _) => rel.arity() <= 1,
            Formula::NodeEq(_, _) | Formula::Edge(_, _, _) | Formula::Lang(_, _) => true,
            Formula::Not(f) => f.is_crpq_neg(),
            Formula::And(a, b) | Formula::Or(a, b) => a.is_crpq_neg() && b.is_crpq_neg(),
            Formula::ExistsNode(_, f)
            | Formula::ExistsPath(_, f)
            | Formula::ForallNode(_, f)
            | Formula::ForallPath(_, f) => f.is_crpq_neg(),
        }
    }

    /// Quantifier rank (depth of nested quantification).
    pub fn quantifier_rank(&self) -> usize {
        match self {
            Formula::NodeEq(_, _)
            | Formula::Edge(_, _, _)
            | Formula::Lang(_, _)
            | Formula::Rel(_, _) => 0,
            Formula::Not(f) => f.quantifier_rank(),
            Formula::And(a, b) | Formula::Or(a, b) => a.quantifier_rank().max(b.quantifier_rank()),
            Formula::ExistsNode(_, f)
            | Formula::ExistsPath(_, f)
            | Formula::ForallNode(_, f)
            | Formula::ForallPath(_, f) => 1 + f.quantifier_rank(),
        }
    }

    /// Collects all unary languages appearing in the formula (language atoms
    /// and arity-1 relation atoms).
    fn collect_languages(&self, out: &mut Vec<Nfa<Symbol>>) {
        match self {
            Formula::Lang(_, nfa) => out.push(nfa.clone()),
            Formula::Rel(rel, _) if rel.arity() == 1 => out.push(rel.project(0).as_ref().clone()),
            Formula::Not(f) => f.collect_languages(out),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_languages(out);
                b.collect_languages(out);
            }
            Formula::ExistsNode(_, f)
            | Formula::ExistsPath(_, f)
            | Formula::ForallNode(_, f)
            | Formula::ForallPath(_, f) => f.collect_languages(out),
            _ => {}
        }
    }
}

/// An assignment of free variables.
#[derive(Clone, Debug, Default)]
pub struct Assignment {
    /// Values of free node variables.
    pub nodes: HashMap<String, NodeId>,
    /// Values of free path variables.
    pub paths: HashMap<String, Path>,
}

impl Assignment {
    /// An empty assignment (for sentences).
    pub fn empty() -> Self {
        Assignment::default()
    }

    /// Binds a node variable.
    pub fn with_node(mut self, var: &str, node: NodeId) -> Self {
        self.nodes.insert(var.to_string(), node);
        self
    }

    /// Binds a path variable.
    pub fn with_path(mut self, var: &str, path: Path) -> Self {
        self.paths.insert(var.to_string(), path);
        self
    }
}

/// Evaluates a `CRPQ¬` formula over a graph under the given assignment of its
/// free variables, using the representative-structure construction of
/// Claim 8.1.1. Returns an error if the formula contains a relation atom of
/// arity ≥ 2 (use [`eval_formula_bounded`] for those).
pub fn eval_crpq_neg(
    formula: &Formula,
    graph: &GraphDb,
    alphabet: &Alphabet,
    assignment: &Assignment,
    config: &EvalConfig,
) -> Result<bool, QueryError> {
    if !formula.is_crpq_neg() {
        return Err(QueryError::Unsupported(
            "eval_crpq_neg only handles CRPQ¬ formulas; relation atoms of arity ≥ 2 require \
             eval_formula_bounded"
                .to_string(),
        ));
    }
    // Merge alphabets so graph labels can be translated into formula symbols.
    let mut merged = alphabet.clone();
    let label_map: Vec<Symbol> = graph.alphabet().iter().map(|(_, l)| merged.intern(l)).collect();

    // Determinize every language of the formula over the merged alphabet.
    let mut languages: Vec<Nfa<Symbol>> = Vec::new();
    formula.collect_languages(&mut languages);
    let full_alphabet: Vec<Symbol> = merged.symbols().collect();
    let dfas: Vec<Dfa<Symbol>> =
        languages.iter().map(|nfa| Dfa::from_nfa(nfa, &full_alphabet)).collect();

    // The representative bound c = quantifier rank + number of free paths.
    let c = formula.quantifier_rank() + assignment.paths.len() + 1;

    // Representative paths: for every source node, the c shortest paths to
    // every (target node, language profile) class.
    let mut representatives: Vec<Path> = Vec::new();
    for u in graph.nodes() {
        let mut paths =
            k_shortest_profile_paths(graph, &label_map, &dfas, u, c, config.max_search_states)?;
        representatives.append(&mut paths);
    }
    // Free paths are part of the structure too.
    let mut domain_paths: Vec<Path> = representatives;
    for p in assignment.paths.values() {
        if !domain_paths.contains(p) {
            domain_paths.push(p.clone());
        }
    }

    let ctx = EvalCtx { graph, label_map: &label_map, domain_paths: Some(&domain_paths), bound: 0 };
    Ok(eval_rec(formula, &ctx, &mut assignment.clone()))
}

/// Evaluates an arbitrary `ECRPQ¬` formula under the *bounded-path*
/// semantics: path quantifiers range over all paths of length at most
/// `path_length_bound`. This is exact whenever every path relevant to the
/// formula is at most that long (e.g. on DAGs with the bound set to the
/// number of nodes); see the module documentation.
pub fn eval_formula_bounded(
    formula: &Formula,
    graph: &GraphDb,
    alphabet: &Alphabet,
    assignment: &Assignment,
    path_length_bound: usize,
) -> Result<bool, QueryError> {
    let mut merged = alphabet.clone();
    let label_map: Vec<Symbol> = graph.alphabet().iter().map(|(_, l)| merged.intern(l)).collect();
    let ctx =
        EvalCtx { graph, label_map: &label_map, domain_paths: None, bound: path_length_bound };
    Ok(eval_rec(formula, &ctx, &mut assignment.clone()))
}

struct EvalCtx<'a> {
    graph: &'a GraphDb,
    label_map: &'a [Symbol],
    /// When `Some`, path quantifiers range over this finite set (the
    /// representative structure); when `None`, they range over all paths of
    /// length ≤ `bound`.
    domain_paths: Option<&'a [Path]>,
    bound: usize,
}

impl EvalCtx<'_> {
    fn translate_label(&self, label: Symbol) -> Symbol {
        self.label_map[label.index()]
    }

    fn translated_word(&self, path: &Path) -> Vec<Symbol> {
        path.label().iter().map(|&l| self.translate_label(l)).collect()
    }

    fn path_domain(&self) -> Vec<Path> {
        match self.domain_paths {
            Some(d) => d.to_vec(),
            None => {
                let mut out = Vec::new();
                for u in self.graph.nodes() {
                    out.extend(enumerate_paths(self.graph, u, self.bound, usize::MAX));
                }
                out
            }
        }
    }
}

fn eval_rec(formula: &Formula, ctx: &EvalCtx<'_>, assignment: &mut Assignment) -> bool {
    match formula {
        Formula::NodeEq(x, y) => assignment.nodes[x] == assignment.nodes[y],
        Formula::Edge(x, p, y) => {
            let path = &assignment.paths[p];
            path.start() == assignment.nodes[x] && path.end() == assignment.nodes[y]
        }
        Formula::Lang(p, nfa) => {
            let word = ctx.translated_word(&assignment.paths[p]);
            nfa.accepts(&word)
        }
        Formula::Rel(rel, paths) => {
            let words: Vec<Vec<Symbol>> =
                paths.iter().map(|p| ctx.translated_word(&assignment.paths[p])).collect();
            let refs: Vec<&[Symbol]> = words.iter().map(|w| w.as_slice()).collect();
            rel.contains(&refs)
        }
        Formula::Not(f) => !eval_rec(f, ctx, assignment),
        Formula::And(a, b) => eval_rec(a, ctx, assignment) && eval_rec(b, ctx, assignment),
        Formula::Or(a, b) => eval_rec(a, ctx, assignment) || eval_rec(b, ctx, assignment),
        Formula::ExistsNode(var, f) => {
            let saved = assignment.nodes.get(var).cloned();
            let mut result = false;
            for v in ctx.graph.nodes() {
                assignment.nodes.insert(var.clone(), v);
                if eval_rec(f, ctx, assignment) {
                    result = true;
                    break;
                }
            }
            restore_node(assignment, var, saved);
            result
        }
        Formula::ForallNode(var, f) => {
            let saved = assignment.nodes.get(var).cloned();
            let mut result = true;
            for v in ctx.graph.nodes() {
                assignment.nodes.insert(var.clone(), v);
                if !eval_rec(f, ctx, assignment) {
                    result = false;
                    break;
                }
            }
            restore_node(assignment, var, saved);
            result
        }
        Formula::ExistsPath(var, f) => {
            let saved = assignment.paths.get(var).cloned();
            let mut result = false;
            for p in ctx.path_domain() {
                assignment.paths.insert(var.clone(), p);
                if eval_rec(f, ctx, assignment) {
                    result = true;
                    break;
                }
            }
            restore_path(assignment, var, saved);
            result
        }
        Formula::ForallPath(var, f) => {
            let saved = assignment.paths.get(var).cloned();
            let mut result = true;
            for p in ctx.path_domain() {
                assignment.paths.insert(var.clone(), p);
                if !eval_rec(f, ctx, assignment) {
                    result = false;
                    break;
                }
            }
            restore_path(assignment, var, saved);
            result
        }
    }
}

fn restore_node(assignment: &mut Assignment, var: &str, saved: Option<NodeId>) {
    match saved {
        Some(v) => {
            assignment.nodes.insert(var.to_string(), v);
        }
        None => {
            assignment.nodes.remove(var);
        }
    }
}

fn restore_path(assignment: &mut Assignment, var: &str, saved: Option<Path>) {
    match saved {
        Some(p) => {
            assignment.paths.insert(var.to_string(), p);
        }
        None => {
            assignment.paths.remove(var);
        }
    }
}

/// Computes, for a fixed source node, up to `c` shortest paths into every
/// (product-state) class of the product of the graph with the language DFAs.
/// Because the DFAs are deterministic, distinct product paths correspond to
/// distinct graph paths, so this yields at least `min(c, available)`
/// representatives for every (target node, language profile) pair
/// (Claim 8.1.1's requirement).
fn k_shortest_profile_paths(
    graph: &GraphDb,
    label_map: &[Symbol],
    dfas: &[Dfa<Symbol>],
    source: NodeId,
    c: usize,
    budget: usize,
) -> Result<Vec<Path>, QueryError> {
    // Product state: (node, one DFA state per language). DFA states are found
    // by running the DFA on the path label incrementally.
    type DState = Vec<u32>;
    let run_step = |states: &DState, sym: Symbol, dfas: &[Dfa<Symbol>]| -> Option<DState> {
        let mut next = Vec::with_capacity(states.len());
        for (i, d) in dfas.iter().enumerate() {
            next.push(d.step(states[i], &sym)?);
        }
        Some(next)
    };
    let initial: DState = dfas.iter().map(|d| d.initial_state()).collect();

    let mut pop_count: HashMap<(NodeId, DState), usize> = HashMap::new();
    let mut queue: VecDeque<(NodeId, DState, Path)> = VecDeque::new();
    let mut out: Vec<Path> = Vec::new();
    queue.push_back((source, initial, Path::empty(source)));
    let mut expanded = 0usize;
    while let Some((node, dstate, path)) = queue.pop_front() {
        let count = pop_count.entry((node, dstate.clone())).or_insert(0);
        if *count >= c {
            continue;
        }
        *count += 1;
        out.push(path.clone());
        expanded += 1;
        if expanded > budget {
            return Err(QueryError::BudgetExceeded {
                what: "representative-path construction exceeded its budget".to_string(),
            });
        }
        for &(label, to) in graph.out_edges(node) {
            let sym = label_map[label.index()];
            if let Some(next_dstate) = run_step(&dstate, sym, dfas) {
                let mut next_path = path.clone();
                next_path.push(label, to);
                queue.push_back((to, next_dstate, next_path));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecrpq_automata::builtin;
    use ecrpq_graph::generators;

    fn cfg() -> EvalConfig {
        EvalConfig::default()
    }

    /// The paper's example of a CRPQ¬ query: nodes x, y such that *no* path
    /// between them is labeled by a string in L.
    #[test]
    fn no_path_in_language() {
        let (g, first, last) = generators::string_graph(&["a", "b", "a"]);
        let al = g.alphabet().clone();
        // ¬∃π ((x, π, y) ∧ (a·b·a)(π))
        let phi = Formula::exists_path(
            "pi",
            Formula::edge("x", "pi", "y").and(Formula::lang("pi", "a b a", &al).unwrap()),
        )
        .not();
        // between first and last there IS an aba path, so the formula is false
        let asg = Assignment::empty().with_node("x", first).with_node("y", last);
        assert!(!eval_crpq_neg(&phi, &g, &al, &asg, &cfg()).unwrap());
        // between last and first there is no path at all, so it is true
        let asg2 = Assignment::empty().with_node("x", last).with_node("y", first);
        assert!(eval_crpq_neg(&phi, &g, &al, &asg2, &cfg()).unwrap());
    }

    /// Universal path quantification: every path from x to y has label in a*.
    #[test]
    fn universal_path_quantification() {
        let g = generators::cycle_graph(3, "a");
        let al = g.alphabet().clone();
        let phi = Formula::forall_path(
            "pi",
            Formula::edge("x", "pi", "y").not().or(Formula::lang("pi", "a*", &al).unwrap()),
        );
        let asg = Assignment::empty().with_node("x", NodeId(0)).with_node("y", NodeId(1));
        assert!(eval_crpq_neg(&phi, &g, &al, &asg, &cfg()).unwrap());

        // Add a b-labeled edge 0 → 1 and the property fails.
        let mut g2 = g.clone();
        g2.add_edge_labeled(NodeId(0), "b", NodeId(1));
        let al2 = g2.alphabet().clone();
        let phi2 = Formula::forall_path(
            "pi",
            Formula::edge("x", "pi", "y").not().or(Formula::lang("pi", "a*", &al2).unwrap()),
        );
        assert!(!eval_crpq_neg(&phi2, &g2, &al2, &asg, &cfg()).unwrap());
    }

    /// Counting-style distinction that needs several representatives per
    /// class: "there exist two distinct paths from x to y with label in a*".
    #[test]
    fn two_distinct_paths() {
        // Graph with exactly two parallel a-paths 0 → 1.
        let mut g = ecrpq_graph::GraphDb::empty();
        let n0 = g.add_node();
        let n1 = g.add_node();
        let mid = g.add_node();
        g.add_edge_labeled(n0, "a", n1);
        g.add_edge_labeled(n0, "a", mid);
        g.add_edge_labeled(mid, "a", n1);
        let al = g.alphabet().clone();
        let body = |p: &str| Formula::edge("x", p, "y").and(Formula::lang(p, "a*", &al).unwrap());
        let phi = Formula::exists_path(
            "p1",
            Formula::exists_path(
                "p2",
                body("p1").and(body("p2")).and(
                    // distinct paths: different lengths here, expressed as p1 in `a`
                    // and p2 in `a a`
                    Formula::lang("p1", "a", &al)
                        .unwrap()
                        .and(Formula::lang("p2", "a a", &al).unwrap()),
                ),
            ),
        );
        let asg = Assignment::empty().with_node("x", n0).with_node("y", n1);
        assert!(eval_crpq_neg(&phi, &g, &al, &asg, &cfg()).unwrap());
        // but not from mid to n1 (only one path, of length 1)
        let asg2 = Assignment::empty().with_node("x", mid).with_node("y", n1);
        assert!(!eval_crpq_neg(&phi, &g, &al, &asg2, &cfg()).unwrap());
    }

    /// ECRPQ¬ under the bounded semantics: no pair of equal-label paths leaves
    /// x towards two different targets (false on a DAG with duplicated labels).
    #[test]
    fn bounded_ecrpq_neg_with_relations() {
        let mut g = ecrpq_graph::GraphDb::empty();
        let n0 = g.add_node();
        let n1 = g.add_node();
        let n2 = g.add_node();
        g.add_edge_labeled(n0, "a", n1);
        g.add_edge_labeled(n0, "a", n2);
        let al = g.alphabet().clone();
        let eq = builtin::equality(&al);
        // ∃π1 ∃π2 ((x,π1,y) ∧ (x,π2,z) ∧ ¬(y = z) ∧ π1 = π2 ∧ |π1| ≥ 1)
        let phi = Formula::exists_path(
            "p1",
            Formula::exists_path(
                "p2",
                Formula::edge("x", "p1", "y")
                    .and(Formula::edge("x", "p2", "z"))
                    .and(Formula::node_eq("y", "z").not())
                    .and(Formula::rel(eq.clone(), &["p1", "p2"]))
                    .and(Formula::lang("p1", "a+", &al).unwrap()),
            ),
        );
        let phi_xyz = Formula::exists_node("y", Formula::exists_node("z", phi));
        let asg = Assignment::empty().with_node("x", n0);
        // The graph is a DAG with ≤ 1-length paths, so bound 3 is exact.
        assert!(eval_formula_bounded(&phi_xyz, &g, &al, &asg, 3).unwrap());
        // From n1 there are no outgoing edges at all.
        let asg2 = Assignment::empty().with_node("x", n1);
        assert!(!eval_formula_bounded(&phi_xyz, &g, &al, &asg2, 3).unwrap());
        // CRPQ¬ evaluator refuses relation atoms of arity 2.
        assert!(eval_crpq_neg(&phi_xyz, &g, &al, &asg, &cfg()).is_err());
    }
}
