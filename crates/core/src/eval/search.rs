//! The convolution search: verifying one candidate node assignment by
//! exploring the on-the-fly product of the padded graph power `G^m` with the
//! query's relation automata (Theorems 6.1 and 6.3).
//!
//! A search state records, for every path variable, either its current node
//! (and, for pinned paths, the position along the pinned path) or the fact
//! that its path has already ended, together with the current state sets of
//! all relation automata and, when linear constraints are present, the
//! accumulated value of each constraint row. A global step chooses one move
//! per still-active path variable — a real edge or "finish here" — with at
//! least one real edge overall (the all-`⊥` letter never occurs in a
//! convolution), advances every relation automaton on the projection of the
//! step onto its tapes, and updates the counters.
//!
//! This is the dense product engine: a state is one flat row of `u64` words —
//! one position word per path variable, the bitset blocks of every relation
//! automaton's current state set (stepped through the precompiled tables of
//! [`CompactNfa`](ecrpq_automata::sim::CompactNfa)), and one word per counter
//! — interned into an arena of [`super::dense`]. The BFS queue and parent
//! pointers hold `u32` state indices, and expansion reuses scratch buffers,
//! so the hot loop performs no allocation. The classical cloned-state
//! formulation is retained in [`super::reference`] for differential testing.
//!
//! # Frontier parallelism
//!
//! With [`EvalOptions::threads`](crate::eval::EvalOptions) > 1 the BFS runs
//! level-synchronously: the states of one level are partitioned into
//! contiguous chunks and expanded by scoped worker threads
//! ([`std::thread::scope`]) that share the frozen
//! [`ShardedArena`](super::dense::ShardedArena) lock-free (reads only; the
//! compiled sim tables are likewise read-only shared, asserted `Sync` in
//! [`super::prepared`]). Each worker records its discoveries in expansion
//! order; between levels the coordinator merges the per-worker buffers *in
//! chunk order*, which is exactly the order the sequential frontier would
//! have produced — so state ids, parent pointers, the first accepting state,
//! the reconstructed witness, and even the visited-state counts are
//! bit-identical to the sequential engine. Levels smaller than
//! `EvalOptions::min_parallel_level` expand inline on the calling thread;
//! tiny searches never pay a thread handoff.

use crate::error::QueryError;
use crate::eval::dense::{self, odometer_next, Arena, Layout, ShardedArena};
use crate::eval::plan;
use crate::eval::prepared::{BoundPlan, RelSim};
use ecrpq_automata::alphabet::Symbol;
use ecrpq_automata::sim::StateSet;
use ecrpq_graph::{NodeId, Path};
use std::collections::VecDeque;

/// One candidate-verification problem.
pub(crate) struct SearchProblem<'a> {
    /// The prepared query bound to the graph being searched.
    pub plan: &'a BoundPlan<'a>,
    /// Candidate assignment of the node variables.
    pub sigma: Vec<NodeId>,
    /// Pinned paths per path variable (used by the membership check).
    pub pinned: Vec<Option<&'a Path>>,
    /// Whether a witness (one path per path variable) should be reconstructed.
    pub want_witness: bool,
    /// Bound on the number of global steps (required when counters are
    /// present, since counter values make the state space infinite).
    pub step_bound: Option<usize>,
    /// Budget on distinct states visited.
    pub max_states: usize,
}

/// Result of a search.
pub(crate) struct SearchOutcome {
    /// Whether an accepting state was reached.
    pub accepted: bool,
    /// Number of distinct states visited.
    pub states_visited: u64,
    /// Witness paths per path variable (only when requested and accepted).
    pub witness: Option<Vec<Path>>,
}

/// The per-variable component of one global step (used for witness
/// reconstruction): `Some((graph label, target node))` for a real edge,
/// `None` for `⊥`.
pub(crate) type MoveVec = Vec<Option<(Symbol, NodeId)>>;

/// True if path variable `p`, currently at `node` after `step` pinned steps,
/// may end its path here.
pub(crate) fn finishable(problem: &SearchProblem<'_>, p: usize, node: NodeId, step: u32) -> bool {
    match problem.pinned[p] {
        Some(path) => step as usize == path.len(),
        None => node == problem.sigma[problem.plan.pq.path_to[p]],
    }
}

/// Position word of the search encoding: `Active { node, step }` →
/// `(node+1) << 32 | step`, `Done` → 0.
#[inline]
fn active_word(node: NodeId, step: u32) -> u64 {
    ((node.0 as u64 + 1) << 32) | step as u64
}

/// One option for one path variable within a global step.
#[derive(Clone, Copy)]
enum Option1 {
    Real { label: Symbol, to: NodeId, step: u32 },
    Finish,
    Pad,
}

/// The per-thread expansion engine: per-variable option lists, the odometer,
/// and the scratch buffers of [`apply_key`], bundled so the sequential loop
/// and every parallel worker expand states through the *same* code. The
/// successors of one state are always emitted in odometer order — the
/// ordering contract the deterministic merge relies on.
struct Expander<'a, 'p> {
    problem: &'a SearchProblem<'p>,
    layout: &'a Layout,
    sims: &'a [&'a RelSim],
    options: Vec<Vec<Option1>>,
    choice: Vec<usize>,
    letters: Vec<Option<Symbol>>,
    next: Vec<u64>,
    rel_scratch: Vec<StateSet>,
}

impl<'a, 'p> Expander<'a, 'p> {
    fn new(problem: &'a SearchProblem<'p>, layout: &'a Layout, sims: &'a [&'a RelSim]) -> Self {
        let num_paths = layout.num_paths;
        Expander {
            problem,
            layout,
            sims,
            options: vec![Vec::new(); num_paths],
            choice: vec![0usize; num_paths],
            letters: vec![None; num_paths],
            next: vec![0u64; layout.words],
            rel_scratch: sims.iter().map(|rs| StateSet::empty(rs.sim.blocks())).collect(),
        }
    }

    /// Emits every admissible global successor of the encoded state `cur` in
    /// odometer order: `emit(next_key, move)` (the move only materialized
    /// when a witness is wanted) returns `false` to stop early. States with
    /// a variable that can neither move nor finish emit nothing.
    fn expand(&mut self, cur: &[u64], mut emit: impl FnMut(&[u64], Option<MoveVec>) -> bool) {
        let problem = self.problem;
        let plan = problem.plan;
        let num_paths = self.layout.num_paths;

        // Per-variable options.
        for (p, &w) in cur.iter().enumerate().take(num_paths) {
            let opts = &mut self.options[p];
            opts.clear();
            if w == 0 {
                opts.push(Option1::Pad);
            } else {
                let node = NodeId((w >> 32) as u32 - 1);
                let step = w as u32;
                match problem.pinned[p] {
                    Some(path) => {
                        if (step as usize) < path.len() {
                            opts.push(Option1::Real {
                                label: path.label()[step as usize],
                                to: path.nodes()[step as usize + 1],
                                step: step + 1,
                            });
                        }
                    }
                    None => {
                        for &(label, to) in plan.graph.out_edges(node) {
                            opts.push(Option1::Real { label, to, step: 0 });
                        }
                    }
                }
                if finishable(problem, p, node, step) {
                    opts.push(Option1::Finish);
                }
            }
            if opts.is_empty() {
                return; // this variable can neither move nor finish
            }
        }

        // Cartesian product of the options (odometer), requiring at least
        // one real move.
        self.choice.fill(0);
        loop {
            let any_real = (0..num_paths)
                .any(|p| matches!(self.options[p][self.choice[p]], Option1::Real { .. }));
            if any_real
                && apply_key(
                    problem,
                    self.layout,
                    self.sims,
                    cur,
                    &self.options,
                    &self.choice,
                    &mut self.letters,
                    &mut self.rel_scratch,
                    &mut self.next,
                )
            {
                let mv = problem.want_witness.then(|| {
                    (0..num_paths)
                        .map(|p| match self.options[p][self.choice[p]] {
                            Option1::Real { label, to, .. } => Some((label, to)),
                            Option1::Finish | Option1::Pad => None,
                        })
                        .collect()
                });
                if !emit(&self.next, mv) {
                    return;
                }
            }
            if !odometer_next(&mut self.choice, |i| self.options[i].len()) {
                return;
            }
        }
    }
}

/// Consistency prechecks shared by both engines: pinned paths must connect
/// the candidate endpoints, and repeated relational atoms must agree.
/// `Some(outcome)` short-circuits the search with a rejection.
fn precheck(problem: &SearchProblem<'_>) -> Option<SearchOutcome> {
    let pq = problem.plan.pq;
    for p in 0..pq.path_vars.len() {
        if let Some(path) = problem.pinned[p] {
            if path.start() != problem.sigma[pq.path_from[p]]
                || path.end() != problem.sigma[pq.path_to[p]]
            {
                return Some(SearchOutcome { accepted: false, states_visited: 0, witness: None });
            }
        }
    }
    for &(p, f, t) in &pq.extra_endpoints {
        if problem.sigma[f] != problem.sigma[pq.path_from[p]]
            || problem.sigma[t] != problem.sigma[pq.path_to[p]]
        {
            return Some(SearchOutcome { accepted: false, states_visited: 0, witness: None });
        }
    }
    None
}

/// Encodes the initial search state.
fn initial_key(problem: &SearchProblem<'_>, layout: &Layout, sims: &[&RelSim]) -> Vec<u64> {
    let pq = problem.plan.pq;
    let mut initial = vec![0u64; layout.words];
    for (p, w) in initial.iter_mut().enumerate().take(layout.num_paths) {
        *w = active_word(problem.sigma[pq.path_from[p]], 0);
    }
    for (j, rs) in sims.iter().enumerate() {
        let off = layout.rel_off[j];
        initial[off..off + layout.rel_blocks[j]].copy_from_slice(rs.sim.initial_set().as_blocks());
    }
    // counters start at zero (already 0)
    initial
}

/// The shared engine preamble: compiled sims, the word layout, and the
/// encoded initial state, with the two short-circuits both engines must
/// take identically — the precheck rejection and the trivial depth-0
/// accept (`states_visited: 1`, empty-parents witness). Hoisted so the
/// sequential and parallel engines cannot drift on these paths.
#[allow(clippy::type_complexity)]
fn search_setup<'p>(
    problem: &SearchProblem<'p>,
) -> Result<(Vec<&'p RelSim>, Layout, Vec<u64>), SearchOutcome> {
    if let Some(outcome) = precheck(problem) {
        return Err(outcome);
    }
    let pq = problem.plan.pq;
    let sims: Vec<&RelSim> = pq.relations.iter().map(|r| r.sim(pq.code_base)).collect();
    let layout = Layout::new(pq.path_vars.len(), &sims, problem.plan.counters().len());
    let initial = initial_key(problem, &layout, &sims);
    if accepts_key(problem, &layout, &sims, &initial) {
        let witness =
            if problem.want_witness { Some(reconstruct(problem, &[], &[], 0)) } else { None };
        return Err(SearchOutcome { accepted: true, states_visited: 1, witness });
    }
    Ok((sims, layout, initial))
}

/// Seed of the parent-pointer / incoming-move tables (kept only when a
/// witness must be reconstructed; indexed by arena id, with the sentinel
/// entry for the initial state).
fn witness_seed(problem: &SearchProblem<'_>) -> (Vec<u32>, Vec<MoveVec>) {
    if problem.want_witness {
        (vec![u32::MAX], vec![Vec::new()])
    } else {
        (Vec::new(), Vec::new())
    }
}

/// Runs the search, dispatching on the bound plan's execution options:
/// `threads > 1` selects the level-synchronous frontier-parallel engine,
/// which produces bit-identical results (see the module docs).
pub(crate) fn run(problem: &SearchProblem<'_>) -> Result<SearchOutcome, QueryError> {
    let threads = problem.plan.options().effective_threads();
    if threads > 1 {
        run_parallel(problem, threads)
    } else {
        run_sequential(problem)
    }
}

/// The sequential engine: one FIFO queue, intern-as-you-expand.
fn run_sequential(problem: &SearchProblem<'_>) -> Result<SearchOutcome, QueryError> {
    let (sims, layout, initial) = match search_setup(problem) {
        Ok(setup) => setup,
        Err(outcome) => return Ok(outcome),
    };
    let mut arena = Arena::new(layout.words);
    let (init_id, _) = arena.intern(&initial);
    let (mut parents, mut moves) = witness_seed(problem);
    let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
    queue.push_back((init_id, 0));

    let mut expander = Expander::new(problem, &layout, &sims);
    let mut cur = vec![0u64; layout.words];

    while let Some((id, depth)) = queue.pop_front() {
        if let Some(bound) = problem.step_bound {
            if depth as usize >= bound {
                continue;
            }
        }
        cur.copy_from_slice(arena.get(id));

        let mut found: Option<u32> = None;
        expander.expand(&cur, |next, mv| {
            let (nid, fresh) = arena.intern(next);
            if fresh {
                if problem.want_witness {
                    parents.push(id);
                    moves.push(mv.expect("witness mode emits moves"));
                }
                if accepts_key(problem, &layout, &sims, next) {
                    found = Some(nid);
                    return false;
                }
                queue.push_back((nid, depth + 1));
            }
            true
        });
        if let Some(accepting) = found {
            let witness = if problem.want_witness {
                Some(reconstruct(problem, &parents, &moves, accepting))
            } else {
                None
            };
            return Ok(SearchOutcome {
                accepted: true,
                states_visited: arena.len() as u64,
                witness,
            });
        }
        if arena.len() > problem.max_states {
            return Err(QueryError::BudgetExceeded {
                what: format!("convolution search visited more than {} states", problem.max_states),
            });
        }
    }
    Ok(SearchOutcome { accepted: false, states_visited: arena.len() as u64, witness: None })
}

/// One worker's discoveries from its chunk of a level, in expansion order.
/// `groups` records, per source state (whether or not it emitted anything),
/// how many candidates follow — the merge uses the group boundaries to
/// replay the sequential engine's per-state budget checkpoints.
struct CandBuf {
    words: usize,
    keys: Vec<u64>,
    moves: Vec<MoveVec>,
    groups: Vec<(u32, u32)>,
}

impl CandBuf {
    fn new(words: usize) -> CandBuf {
        CandBuf { words, keys: Vec::new(), moves: Vec::new(), groups: Vec::new() }
    }

    fn begin_group(&mut self, src: u32) {
        self.groups.push((src, 0));
    }

    fn push(&mut self, key: &[u64], mv: Option<MoveVec>) {
        self.keys.extend_from_slice(key);
        if let Some(mv) = mv {
            self.moves.push(mv);
        }
        self.groups.last_mut().expect("push after begin_group").1 += 1;
    }

    fn key(&self, idx: usize) -> &[u64] {
        &self.keys[idx * self.words..(idx + 1) * self.words]
    }
}

/// The frontier-parallel engine: level-synchronous BFS with parallel
/// expansion and a deterministic sequential merge (see the module docs for
/// why the merge order makes it bit-identical to [`run_sequential`]).
fn run_parallel(problem: &SearchProblem<'_>, threads: usize) -> Result<SearchOutcome, QueryError> {
    let (sims, layout, initial) = match search_setup(problem) {
        Ok(setup) => setup,
        Err(outcome) => return Ok(outcome),
    };
    let min_level = problem.plan.options().min_parallel_level.max(1);
    let mut arena = ShardedArena::new(layout.words);
    let (init_id, _) = arena.intern(&initial);
    let (mut parents, mut moves) = witness_seed(problem);

    let mut level: Vec<u32> = vec![init_id];
    let mut next_level: Vec<u32> = Vec::new();
    let mut inline_expander = Expander::new(problem, &layout, &sims);
    let mut cur = vec![0u64; layout.words];
    let mut depth: usize = 0;

    loop {
        if let Some(bound) = problem.step_bound {
            if depth >= bound {
                break;
            }
        }
        next_level.clear();
        let mut found: Option<u32> = None;

        if level.len() < min_level {
            // Small frontier: expand inline, intern-as-you-go — exactly the
            // sequential engine restricted to this level.
            'states: for &id in &level {
                cur.copy_from_slice(arena.get(id));
                inline_expander.expand(&cur, |next, mv| {
                    let (nid, fresh) = arena.intern(next);
                    if fresh {
                        if problem.want_witness {
                            parents.push(id);
                            moves.push(mv.expect("witness mode emits moves"));
                        }
                        if accepts_key(problem, &layout, &sims, next) {
                            found = Some(nid);
                            return false;
                        }
                        next_level.push(nid);
                    }
                    true
                });
                if found.is_some() {
                    break 'states;
                }
                if arena.len() > problem.max_states {
                    return Err(budget_error(problem));
                }
            }
        } else {
            // Parallel expansion in bounded rounds via the shared fan-out
            // of `dense`: each round freezes the arena, so every chunk's
            // expander only reads it (lock-free `get`/`lookup`) to skip
            // already-interned successors, and each round's discoveries
            // merge before the next round starts — bounding the buffered
            // candidates to one round's fan-out and keeping the budget
            // checkpoints close behind the expansion.
            'rounds: for round in level.chunks(dense::PARALLEL_ROUND_CAP) {
                let mut bufs = {
                    let arena = &arena;
                    let layout = &layout;
                    let sims = &sims;
                    dense::expand_level_chunks(
                        round,
                        threads,
                        min_level.div_ceil(2),
                        || CandBuf::new(layout.words),
                        |ids, buf| {
                            let mut expander = Expander::new(problem, layout, sims);
                            for &id in ids {
                                buf.begin_group(id);
                                expander.expand(arena.get(id), |next, mv| {
                                    // Known states would be no-op interns;
                                    // only genuinely new keys travel to the
                                    // merge. (A state first discovered in
                                    // this same round is not yet published,
                                    // so several workers may emit it — the
                                    // merge dedups, first in order wins.)
                                    if arena.lookup(next).is_none() {
                                        buf.push(next, mv);
                                    }
                                    true
                                });
                            }
                        },
                    )
                };

                // Deterministic merge: chunks in level order, groups in
                // state order, candidates in odometer order — the exact
                // sequence the sequential engine would have interned.
                for buf in &mut bufs {
                    let mut idx = 0;
                    for g in 0..buf.groups.len() {
                        let (src, count) = buf.groups[g];
                        for _ in 0..count {
                            let (nid, fresh, accepting) = {
                                let key = buf.key(idx);
                                let (nid, fresh) = arena.intern(key);
                                let accepting =
                                    fresh && accepts_key(problem, &layout, &sims, arena.get(nid));
                                (nid, fresh, accepting)
                            };
                            if fresh {
                                if problem.want_witness {
                                    parents.push(src);
                                    moves.push(std::mem::take(&mut buf.moves[idx]));
                                }
                                if accepting {
                                    found = Some(nid);
                                    break 'rounds;
                                }
                                next_level.push(nid);
                            }
                            idx += 1;
                        }
                        if arena.len() > problem.max_states {
                            return Err(budget_error(problem));
                        }
                    }
                }
            }
        }

        if let Some(accepting) = found {
            let witness = if problem.want_witness {
                Some(reconstruct(problem, &parents, &moves, accepting))
            } else {
                None
            };
            return Ok(SearchOutcome {
                accepted: true,
                states_visited: arena.len() as u64,
                witness,
            });
        }
        if next_level.is_empty() {
            break;
        }
        std::mem::swap(&mut level, &mut next_level);
        depth += 1;
    }
    Ok(SearchOutcome { accepted: false, states_visited: arena.len() as u64, witness: None })
}

fn budget_error(problem: &SearchProblem<'_>) -> QueryError {
    QueryError::BudgetExceeded {
        what: format!("convolution search visited more than {} states", problem.max_states),
    }
}

/// True if the encoded state is accepting: every path variable is finished or
/// can finish at its current node, every relation automaton's state set
/// intersects its accepting set, and every counter row is satisfied.
fn accepts_key(
    problem: &SearchProblem<'_>,
    layout: &Layout,
    sims: &[&RelSim],
    key: &[u64],
) -> bool {
    for (p, &w) in key.iter().enumerate().take(layout.num_paths) {
        if w == 0 {
            continue; // Done
        }
        if !finishable(problem, p, NodeId((w >> 32) as u32 - 1), w as u32) {
            return false;
        }
    }
    for (j, rs) in sims.iter().enumerate() {
        let off = layout.rel_off[j];
        if !rs.sim.any_accepting_blocks(&key[off..off + layout.rel_blocks[j]]) {
            return false;
        }
    }
    for (i, row) in problem.plan.counters().iter().enumerate() {
        if !row.satisfied(key[layout.cnt_off + i] as i64) {
            return false;
        }
    }
    true
}

/// Applies the global move selected by `choice` to the encoded state `cur`,
/// writing the successor into `next`. Returns `false` if some relation
/// automaton has no matching transition (the move is a dead end).
#[allow(clippy::too_many_arguments)]
fn apply_key(
    problem: &SearchProblem<'_>,
    layout: &Layout,
    sims: &[&RelSim],
    cur: &[u64],
    options: &[Vec<Option1>],
    choice: &[usize],
    letters: &mut [Option<Symbol>],
    rel_scratch: &mut [StateSet],
    next: &mut [u64],
) -> bool {
    let plan = problem.plan;
    for p in 0..layout.num_paths {
        match options[p][choice[p]] {
            Option1::Real { label, to, step } => {
                next[p] = active_word(to, step);
                letters[p] = Some(plan.translate(label));
            }
            Option1::Finish | Option1::Pad => {
                next[p] = 0;
                letters[p] = None;
            }
        }
    }

    // Advance every relation automaton on the projection of the step.
    if !plan::advance_relations(
        plan.pq,
        sims,
        &layout.rel_off,
        &layout.rel_blocks,
        letters,
        cur,
        rel_scratch,
        next,
    ) {
        return false;
    }

    // Update counters.
    for (i, row) in plan.counters().iter().enumerate() {
        let mut v = cur[layout.cnt_off + i] as i64;
        for p in 0..layout.num_paths {
            if let Option1::Real { label, .. } = options[p][choice[p]] {
                v += row.step_delta(p, plan.translate(label));
            }
        }
        next[layout.cnt_off + i] = v as u64;
    }
    true
}

/// Reconstructs one witness path per path variable by following the `u32`
/// parent pointers from the accepting state back to the root.
fn reconstruct(
    problem: &SearchProblem<'_>,
    parents: &[u32],
    moves: &[MoveVec],
    accepting: u32,
) -> Vec<Path> {
    let pq = problem.plan.pq;
    let mut seq: Vec<u32> = Vec::new();
    let mut id = accepting;
    while !parents.is_empty() && parents[id as usize] != u32::MAX {
        seq.push(id);
        id = parents[id as usize];
    }
    seq.reverse();
    (0..pq.path_vars.len())
        .map(|p| {
            let mut path = Path::empty(problem.sigma[pq.path_from[p]]);
            for &mid in &seq {
                if let Some((label, to)) = moves[mid as usize][p] {
                    path.push(label, to);
                }
            }
            path
        })
        .collect()
}
