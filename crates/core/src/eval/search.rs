//! The convolution search: verifying one candidate node assignment by
//! exploring the on-the-fly product of the padded graph power `G^m` with the
//! query's relation automata (Theorems 6.1 and 6.3).
//!
//! A search state records, for every path variable, either its current node
//! (and, for pinned paths, the position along the pinned path) or the fact
//! that its path has already ended, together with the current state sets of
//! all relation automata and, when linear constraints are present, the
//! accumulated value of each constraint row. A global step chooses one move
//! per still-active path variable — a real edge or "finish here" — with at
//! least one real edge overall (the all-`⊥` letter never occurs in a
//! convolution), advances every relation automaton on the projection of the
//! step onto its tapes, and updates the counters.
//!
//! This is the dense product engine: a state is one flat row of `u64` words —
//! one position word per path variable, the bitset blocks of every relation
//! automaton's current state set (stepped through the precompiled tables of
//! [`CompactNfa`](ecrpq_automata::sim::CompactNfa)), and one word per counter
//! — interned into the arena of [`super::dense`]. The BFS queue and parent
//! pointers hold `u32` state indices, and expansion reuses scratch buffers,
//! so the hot loop performs no allocation. The classical cloned-state
//! formulation is retained in [`super::reference`] for differential testing.

use crate::error::QueryError;
use crate::eval::dense::{odometer_next, Arena, Layout};
use crate::eval::plan;
use crate::eval::prepared::{BoundPlan, RelSim};
use ecrpq_automata::alphabet::Symbol;
use ecrpq_automata::sim::StateSet;
use ecrpq_graph::{NodeId, Path};
use std::collections::VecDeque;

/// One candidate-verification problem.
pub(crate) struct SearchProblem<'a> {
    /// The prepared query bound to the graph being searched.
    pub plan: &'a BoundPlan<'a>,
    /// Candidate assignment of the node variables.
    pub sigma: Vec<NodeId>,
    /// Pinned paths per path variable (used by the membership check).
    pub pinned: Vec<Option<&'a Path>>,
    /// Whether a witness (one path per path variable) should be reconstructed.
    pub want_witness: bool,
    /// Bound on the number of global steps (required when counters are
    /// present, since counter values make the state space infinite).
    pub step_bound: Option<usize>,
    /// Budget on distinct states visited.
    pub max_states: usize,
}

/// Result of a search.
pub(crate) struct SearchOutcome {
    /// Whether an accepting state was reached.
    pub accepted: bool,
    /// Number of distinct states visited.
    pub states_visited: u64,
    /// Witness paths per path variable (only when requested and accepted).
    pub witness: Option<Vec<Path>>,
}

/// The per-variable component of one global step (used for witness
/// reconstruction): `Some((graph label, target node))` for a real edge,
/// `None` for `⊥`.
pub(crate) type MoveVec = Vec<Option<(Symbol, NodeId)>>;

/// True if path variable `p`, currently at `node` after `step` pinned steps,
/// may end its path here.
pub(crate) fn finishable(problem: &SearchProblem<'_>, p: usize, node: NodeId, step: u32) -> bool {
    match problem.pinned[p] {
        Some(path) => step as usize == path.len(),
        None => node == problem.sigma[problem.plan.pq.path_to[p]],
    }
}

/// Position word of the search encoding: `Active { node, step }` →
/// `(node+1) << 32 | step`, `Done` → 0.
#[inline]
fn active_word(node: NodeId, step: u32) -> u64 {
    ((node.0 as u64 + 1) << 32) | step as u64
}

/// One option for one path variable within a global step.
#[derive(Clone, Copy)]
enum Option1 {
    Real { label: Symbol, to: NodeId, step: u32 },
    Finish,
    Pad,
}

/// Runs the search.
pub(crate) fn run(problem: &SearchProblem<'_>) -> Result<SearchOutcome, QueryError> {
    let plan = problem.plan;
    let pq = plan.pq;
    let num_paths = pq.path_vars.len();

    // Consistency prechecks for pinned paths and repeated relational atoms.
    for p in 0..num_paths {
        if let Some(path) = problem.pinned[p] {
            if path.start() != problem.sigma[pq.path_from[p]]
                || path.end() != problem.sigma[pq.path_to[p]]
            {
                return Ok(SearchOutcome { accepted: false, states_visited: 0, witness: None });
            }
        }
    }
    for &(p, f, t) in &pq.extra_endpoints {
        if problem.sigma[f] != problem.sigma[pq.path_from[p]]
            || problem.sigma[t] != problem.sigma[pq.path_to[p]]
        {
            return Ok(SearchOutcome { accepted: false, states_visited: 0, witness: None });
        }
    }

    let sims: Vec<&RelSim> = pq.relations.iter().map(|r| r.sim(pq.code_base)).collect();
    let layout = Layout::new(num_paths, &sims, plan.counters().len());
    let mut arena = Arena::new(layout.words);

    // Encode the initial state.
    let mut initial = vec![0u64; layout.words];
    for (p, w) in initial.iter_mut().enumerate().take(num_paths) {
        *w = active_word(problem.sigma[pq.path_from[p]], 0);
    }
    for (j, rs) in sims.iter().enumerate() {
        let off = layout.rel_off[j];
        initial[off..off + layout.rel_blocks[j]].copy_from_slice(rs.sim.initial_set().as_blocks());
    }
    // counters start at zero (already 0)

    if accepts_key(problem, &layout, &sims, &initial) {
        let witness =
            if problem.want_witness { Some(reconstruct(problem, &[], &[], 0)) } else { None };
        return Ok(SearchOutcome { accepted: true, states_visited: 1, witness });
    }
    let (init_id, _) = arena.intern(&initial);

    // Parent pointers and per-state incoming moves, only kept when a witness
    // must be reconstructed. Indexed by arena id.
    let mut parents: Vec<u32> = Vec::new();
    let mut moves: Vec<MoveVec> = Vec::new();
    if problem.want_witness {
        parents.push(u32::MAX);
        moves.push(Vec::new());
    }
    let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
    queue.push_back((init_id, 0));

    // Scratch buffers reused across all expansions.
    let mut options: Vec<Vec<Option1>> = vec![Vec::new(); num_paths];
    let mut choice = vec![0usize; num_paths];
    let mut letters: Vec<Option<Symbol>> = vec![None; num_paths];
    let mut cur = vec![0u64; layout.words];
    let mut next = vec![0u64; layout.words];
    let mut rel_scratch: Vec<StateSet> =
        sims.iter().map(|rs| StateSet::empty(rs.sim.blocks())).collect();

    while let Some((id, depth)) = queue.pop_front() {
        if let Some(bound) = problem.step_bound {
            if depth as usize >= bound {
                continue;
            }
        }
        cur.copy_from_slice(arena.get(id));

        // Per-variable options.
        let mut dead = false;
        for p in 0..num_paths {
            let opts = &mut options[p];
            opts.clear();
            let w = cur[p];
            if w == 0 {
                opts.push(Option1::Pad);
            } else {
                let node = NodeId((w >> 32) as u32 - 1);
                let step = w as u32;
                match problem.pinned[p] {
                    Some(path) => {
                        if (step as usize) < path.len() {
                            opts.push(Option1::Real {
                                label: path.label()[step as usize],
                                to: path.nodes()[step as usize + 1],
                                step: step + 1,
                            });
                        }
                    }
                    None => {
                        for &(label, to) in plan.graph.out_edges(node) {
                            opts.push(Option1::Real { label, to, step: 0 });
                        }
                    }
                }
                if finishable(problem, p, node, step) {
                    opts.push(Option1::Finish);
                }
            }
            if opts.is_empty() {
                dead = true; // this variable can neither move nor finish
                break;
            }
        }
        if dead {
            continue;
        }

        // Cartesian product of the options (odometer), requiring at least
        // one real move.
        let mut found: Option<u32> = None;
        choice.fill(0);
        'outer: loop {
            let any_real =
                (0..num_paths).any(|p| matches!(options[p][choice[p]], Option1::Real { .. }));
            if any_real
                && apply_key(
                    problem,
                    &layout,
                    &sims,
                    &cur,
                    &options,
                    &choice,
                    &mut letters,
                    &mut rel_scratch,
                    &mut next,
                )
            {
                let (nid, fresh) = arena.intern(&next);
                if fresh {
                    if problem.want_witness {
                        parents.push(id);
                        moves.push(
                            (0..num_paths)
                                .map(|p| match options[p][choice[p]] {
                                    Option1::Real { label, to, .. } => Some((label, to)),
                                    Option1::Finish | Option1::Pad => None,
                                })
                                .collect(),
                        );
                    }
                    if accepts_key(problem, &layout, &sims, &next) {
                        found = Some(nid);
                        break 'outer;
                    }
                    queue.push_back((nid, depth + 1));
                }
            }
            if !odometer_next(&mut choice, |i| options[i].len()) {
                break 'outer;
            }
        }
        if let Some(accepting) = found {
            let witness = if problem.want_witness {
                Some(reconstruct(problem, &parents, &moves, accepting))
            } else {
                None
            };
            return Ok(SearchOutcome {
                accepted: true,
                states_visited: arena.len() as u64,
                witness,
            });
        }
        if arena.len() > problem.max_states {
            return Err(QueryError::BudgetExceeded {
                what: format!("convolution search visited more than {} states", problem.max_states),
            });
        }
    }
    Ok(SearchOutcome { accepted: false, states_visited: arena.len() as u64, witness: None })
}

/// True if the encoded state is accepting: every path variable is finished or
/// can finish at its current node, every relation automaton's state set
/// intersects its accepting set, and every counter row is satisfied.
fn accepts_key(
    problem: &SearchProblem<'_>,
    layout: &Layout,
    sims: &[&RelSim],
    key: &[u64],
) -> bool {
    for (p, &w) in key.iter().enumerate().take(layout.num_paths) {
        if w == 0 {
            continue; // Done
        }
        if !finishable(problem, p, NodeId((w >> 32) as u32 - 1), w as u32) {
            return false;
        }
    }
    for (j, rs) in sims.iter().enumerate() {
        let off = layout.rel_off[j];
        if !rs.sim.any_accepting_blocks(&key[off..off + layout.rel_blocks[j]]) {
            return false;
        }
    }
    for (i, row) in problem.plan.counters().iter().enumerate() {
        if !row.satisfied(key[layout.cnt_off + i] as i64) {
            return false;
        }
    }
    true
}

/// Applies the global move selected by `choice` to the encoded state `cur`,
/// writing the successor into `next`. Returns `false` if some relation
/// automaton has no matching transition (the move is a dead end).
#[allow(clippy::too_many_arguments)]
fn apply_key(
    problem: &SearchProblem<'_>,
    layout: &Layout,
    sims: &[&RelSim],
    cur: &[u64],
    options: &[Vec<Option1>],
    choice: &[usize],
    letters: &mut [Option<Symbol>],
    rel_scratch: &mut [StateSet],
    next: &mut [u64],
) -> bool {
    let plan = problem.plan;
    for p in 0..layout.num_paths {
        match options[p][choice[p]] {
            Option1::Real { label, to, step } => {
                next[p] = active_word(to, step);
                letters[p] = Some(plan.translate(label));
            }
            Option1::Finish | Option1::Pad => {
                next[p] = 0;
                letters[p] = None;
            }
        }
    }

    // Advance every relation automaton on the projection of the step.
    if !plan::advance_relations(
        plan.pq,
        sims,
        &layout.rel_off,
        &layout.rel_blocks,
        letters,
        cur,
        rel_scratch,
        next,
    ) {
        return false;
    }

    // Update counters.
    for (i, row) in plan.counters().iter().enumerate() {
        let mut v = cur[layout.cnt_off + i] as i64;
        for p in 0..layout.num_paths {
            if let Option1::Real { label, .. } = options[p][choice[p]] {
                v += row.step_delta(p, plan.translate(label));
            }
        }
        next[layout.cnt_off + i] = v as u64;
    }
    true
}

/// Reconstructs one witness path per path variable by following the `u32`
/// parent pointers from the accepting state back to the root.
fn reconstruct(
    problem: &SearchProblem<'_>,
    parents: &[u32],
    moves: &[MoveVec],
    accepting: u32,
) -> Vec<Path> {
    let pq = problem.plan.pq;
    let mut seq: Vec<u32> = Vec::new();
    let mut id = accepting;
    while !parents.is_empty() && parents[id as usize] != u32::MAX {
        seq.push(id);
        id = parents[id as usize];
    }
    seq.reverse();
    (0..pq.path_vars.len())
        .map(|p| {
            let mut path = Path::empty(problem.sigma[pq.path_from[p]]);
            for &mid in &seq {
                if let Some((label, to)) = moves[mid as usize][p] {
                    path.push(label, to);
                }
            }
            path
        })
        .collect()
}
