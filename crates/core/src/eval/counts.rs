//! Linear constraints on numbers of occurrences of labels (Section 8.2,
//! Theorem 8.5).
//!
//! Queries built with [`crate::query::EcrpqBuilder::linear_constraint`] carry
//! rows `Σ coef·target op constant` where each target is either the length of
//! a path variable or the number of occurrences of a label on it. The main
//! evaluator handles such queries directly: the convolution search of
//! [`super::search`] tracks the value of every constraint row along the run
//! and only accepts runs whose final values satisfy all rows, with the number
//! of global steps bounded by the small-model bound of Lemma 8.6 (clamped and
//! configurable through [`EvalConfig::max_convolution_steps`]).
//!
//! This module adds convenience constructors for common constraint shapes —
//! notably the paper's running example "at least `p`% of the journey is with
//! airline `a`" — and the module-level tests exercising the machinery.

use crate::query::{CountTarget, PathVar, QLinearConstraint};
use ecrpq_automata::semilinear::CmpOp;

/// Builds the constraint "at least `percent`% of the steps of `path` carry
/// `label`": `100·#label(path) − percent·|path| ≥ 0`.
pub fn fraction_at_least(path: &str, label: &str, percent: i64) -> QLinearConstraint {
    QLinearConstraint {
        terms: vec![
            (100, CountTarget::LabelCount(PathVar::new(path), label.to_string())),
            (-percent, CountTarget::Length(PathVar::new(path))),
        ],
        op: CmpOp::Ge,
        constant: 0,
    }
}

/// Builds the constraint `#label(path) op constant`.
pub fn label_count(path: &str, label: &str, op: CmpOp, constant: i64) -> QLinearConstraint {
    QLinearConstraint {
        terms: vec![(1, CountTarget::LabelCount(PathVar::new(path), label.to_string()))],
        op,
        constant,
    }
}

/// Builds the constraint `|path| op constant`.
pub fn length(path: &str, op: CmpOp, constant: i64) -> QLinearConstraint {
    QLinearConstraint { terms: vec![(1, CountTarget::Length(PathVar::new(path)))], op, constant }
}

/// Builds the constraint `|path1| op |path2|` (as `|path1| − |path2| op 0`).
pub fn length_compare(path1: &str, path2: &str, op: CmpOp) -> QLinearConstraint {
    QLinearConstraint {
        terms: vec![
            (1, CountTarget::Length(PathVar::new(path1))),
            (-1, CountTarget::Length(PathVar::new(path2))),
        ],
        op,
        constant: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{self, EvalConfig};
    use crate::query::Ecrpq;
    use ecrpq_graph::generators;
    use ecrpq_graph::GraphDb;

    /// The paper's airline example (Section 8.2): an itinerary where at least
    /// 80% of the journey duration is with Singapore Airlines (label `SQ`).
    #[test]
    fn airline_fraction_constraint() {
        // Hand-built network: London → Sydney has two routes; one is 5 SQ
        // segments, the other is 2 SQ segments + 3 BA segments.
        let mut g = GraphDb::empty();
        let london = g.add_named_node("London");
        let sydney = g.add_named_node("Sydney");
        let mut prev = london;
        for i in 0..4 {
            let n = g.add_named_node(&format!("sq{i}"));
            g.add_edge_labeled(prev, "SQ", n);
            prev = n;
        }
        g.add_edge_labeled(prev, "SQ", sydney);
        let mut prev = london;
        for i in 0..1 {
            let n = g.add_named_node(&format!("mix{i}"));
            g.add_edge_labeled(prev, "SQ", n);
            prev = n;
        }
        let mid = g.add_named_node("mix_mid");
        g.add_edge_labeled(prev, "SQ", mid);
        let mut prev = mid;
        for i in 0..2 {
            let n = g.add_named_node(&format!("ba{i}"));
            g.add_edge_labeled(prev, "BA", n);
            prev = n;
        }
        g.add_edge_labeled(prev, "BA", sydney);

        let al = g.alphabet().clone();
        let build = |percent: i64| {
            let mut b = Ecrpq::builder(&al)
                .atom("x", "p", "y")
                .bind_node("x", "London")
                .bind_node("y", "Sydney");
            let c = fraction_at_least("p", "SQ", percent);
            b = b.linear_constraint(c.terms, c.op, c.constant);
            b.build().unwrap()
        };
        let cfg = EvalConfig::default();
        // 80%: the all-SQ route qualifies.
        assert!(eval::eval_boolean(&build(80), &g, &cfg).unwrap());
        // 100%: still satisfiable (the all-SQ route).
        assert!(eval::eval_boolean(&build(100), &g, &cfg).unwrap());
        // Remove the all-SQ route by demanding at least one BA segment too —
        // then 80% SQ becomes unsatisfiable (best mixed route is 2/5 = 40%).
        let mut b = Ecrpq::builder(&al)
            .atom("x", "p", "y")
            .bind_node("x", "London")
            .bind_node("y", "Sydney");
        let c = fraction_at_least("p", "SQ", 80);
        b = b.linear_constraint(c.terms, c.op, c.constant);
        let c2 = label_count("p", "BA", CmpOp::Ge, 1);
        b = b.linear_constraint(c2.terms, c2.op, c2.constant);
        let q = b.build().unwrap();
        assert!(!eval::eval_boolean(&q, &g, &cfg).unwrap());
    }

    /// Length comparison constraints across two paths: find nodes with two
    /// outgoing paths of equal length to fixed targets — the "same-length
    /// path to a given advisor" query from the introduction, expressed with
    /// counters instead of the `el` relation.
    #[test]
    fn cross_path_length_equality_via_counters() {
        let (g, first, last) = generators::string_graph(&["a", "a", "b", "b"]);
        let al = g.alphabet().clone();
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .language("p1", "a+")
            .language("p2", "b+")
            .linear_constraint(length_compare("p1", "p2", CmpOp::Eq).terms, CmpOp::Eq, 0)
            .build()
            .unwrap();
        let answers = eval::eval_nodes(&q, &g, &EvalConfig::default()).unwrap();
        assert!(answers.contains(&vec![first, last]));
        // on the string aabb the answers are the full span (a^2 b^2) and the
        // inner span (a^1 b^1)
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn label_count_bounds() {
        let g = generators::cycle_graph(5, "a");
        let al = g.alphabet().clone();
        let q = Ecrpq::builder(&al)
            .atom("x", "p", "y")
            .bind_node("x", "n0")
            .linear_constraint(label_count("p", "a", CmpOp::Ge, 7).terms, CmpOp::Ge, 7)
            .build();
        // the cycle's nodes are anonymous, so binding by name fails — rebuild
        // with an explicit named graph instead.
        assert!(q.is_ok());
        let mut g2 = GraphDb::empty();
        let n0 = g2.add_named_node("n0");
        let n1 = g2.add_named_node("n1");
        g2.add_edge_labeled(n0, "a", n1);
        g2.add_edge_labeled(n1, "a", n0);
        let al2 = g2.alphabet().clone();
        let q2 = Ecrpq::builder(&al2)
            .atom("x", "p", "y")
            .bind_node("x", "n0")
            .linear_constraint(label_count("p", "a", CmpOp::Ge, 7).terms, CmpOp::Ge, 7)
            .build()
            .unwrap();
        // paths of length ≥ 7 exist by looping
        assert!(eval::eval_boolean(&q2, &g2, &EvalConfig::default()).unwrap());
        let q3 = Ecrpq::builder(&al2)
            .atom("x", "p", "y")
            .bind_node("x", "n0")
            .language("p", "a a a")
            .linear_constraint(label_count("p", "a", CmpOp::Ge, 7).terms, CmpOp::Ge, 7)
            .build()
            .unwrap();
        // language forces exactly 3 edges, so the count constraint fails
        assert!(!eval::eval_boolean(&q3, &g2, &EvalConfig::default()).unwrap());
    }

    #[test]
    fn constraint_constructors_shape() {
        let c = fraction_at_least("p", "SQ", 80);
        assert_eq!(c.terms.len(), 2);
        assert_eq!(c.constant, 0);
        let l = length("p", CmpOp::Le, 9);
        assert_eq!(l.terms.len(), 1);
        let cmp = length_compare("p", "q", CmpOp::Ge);
        assert_eq!(cmp.terms[1].0, -1);
    }
}
