//! The prepared-query pipeline: graph-independent compilation
//! ([`PreparedQuery`]) split from cheap per-graph binding ([`BoundPlan`]).
//!
//! Evaluation is a three-phase pipeline:
//!
//! 1. **parse** — [`crate::parse`] turns textual ECRPQ syntax into an
//!    [`Ecrpq`] (queries can also be built programmatically);
//! 2. **compile** — [`PreparedQuery::prepare`] validates the query, numbers
//!    its variables densely, intersects per-path unary constraints, and owns
//!    the lazily compiled dense simulation tables of every relation automaton
//!    (shared with the [`RegularRelation`] memoization in `ecrpq_automata`,
//!    so the same relation compiles once per process, not once per query or
//!    per evaluation);
//! 3. **bind/execute** — [`PreparedQuery::bind`] resolves everything that
//!    depends on one concrete graph (named-node constants, the symbol
//!    translation into the merged alphabet, a CSR adjacency with
//!    pre-translated labels, label-count coefficients for graph-only labels)
//!    into a [`BoundPlan`], whose `run*` methods execute the query.
//!
//! `prepare(&query)?` once, then `.bind(&graph)?.run(&config)` as many times
//! as there are graphs: nothing automaton-shaped is recompiled on reuse, and
//! the cache-hit counters of [`EvalStats`] prove it.

use crate::error::QueryError;
use crate::eval::plan::{self, Engine, EvalStats, Mode, ReachRel};
use crate::eval::search::SearchProblem;
use crate::eval::{Answer, EvalConfig, EvalOptions};
use crate::query::{CountTarget, Ecrpq, QLinearConstraint};
use ecrpq_automata::alphabet::{Alphabet, Symbol, TupleSym};
use ecrpq_automata::dfa;
use ecrpq_automata::nfa::Nfa;
use ecrpq_automata::relation::RegularRelation;
use ecrpq_automata::semilinear::CmpOp;
use ecrpq_automata::sim::CompactNfa;
use ecrpq_graph::{GraphDb, NodeId, Path};
use ecrpq_util::trace::{self as qtrace, Trace};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// Upper bound on automaton states for the dense engine. Above this, the
/// per-`(state, symbol)` bitset table and the fixed-width bitset rows
/// embedded in search keys stop paying for themselves (a 28k-state
/// edit-distance automaton would need a multi-gigabyte table and 3.5 KB per
/// stored search state); such queries fall back to the sparse reference
/// verifier.
const DENSE_MAX_STATES: usize = 2048;

/// Upper bound on dense transition-table size (in `u64` words, 32 MB).
const DENSE_MAX_TABLE_WORDS: usize = 1 << 22;

/// True if `nfa` is small enough for dense table compilation.
pub(crate) fn dense_eligible<S: Clone + Eq + std::hash::Hash + Ord>(nfa: &Nfa<S>) -> bool {
    let n = nfa.num_states();
    if n > DENSE_MAX_STATES {
        return false;
    }
    let blocks = n.div_ceil(64).max(1);
    let syms = nfa.symbols_used().len().max(1);
    n.max(1) * blocks * syms <= DENSE_MAX_TABLE_WORDS
}

/// Largest direct-indexed code table (entries). Below this the tuple-code
/// lookup is one array index; above it, a hash probe.
const CODE_MAP_DENSE_LIMIT: u64 = 1 << 16;

/// Tuple-letter code → dense symbol id. The search performs one lookup per
/// (move, relation); a direct-indexed table avoids hashing entirely whenever
/// `(|A|+2)^arity` is small, which covers every realistic query alphabet.
#[derive(Clone, Debug)]
pub(crate) enum CodeMap {
    Dense(Vec<u32>),
    Hash(HashMap<u64, u32>),
}

impl CodeMap {
    /// The dense symbol id of an encoded tuple letter, if the relation reads
    /// that letter at all.
    #[inline]
    pub fn get(&self, code: u64) -> Option<u32> {
        match self {
            CodeMap::Dense(table) => {
                table.get(code as usize).copied().filter(|&sid| sid != u32::MAX)
            }
            CodeMap::Hash(map) => map.get(&code).copied(),
        }
    }
}

/// The base-`base` digit of one convolution-letter component: `0` for `⊥`,
/// `index + 1` for a query-alphabet symbol (index < `alphabet_len`), and the
/// reserved top digit `base - 1` for any *foreign* symbol — a graph label
/// the query alphabet does not know (merged index ≥ `alphabet_len`). No
/// relation built over the query alphabet can read a foreign symbol, so all
/// foreign labels collapse into one digit that [`RelSim::build`] never emits
/// into a [`CodeMap`].
#[inline]
fn letter_digit(letter: Option<Symbol>, alphabet_len: usize, base: u64) -> u64 {
    match letter {
        None => 0,
        Some(s) if (s.0 as usize) < alphabet_len => s.0 as u64 + 1,
        Some(_) => base - 1,
    }
}

/// Encodes the convolution letter a relation reads (the projection of the
/// per-variable letters onto its tapes) as one `u64`, for lookup in
/// [`RelSim::codes`]. `alphabet_len`/`base` must be the prepared query's
/// [`PreparedQuery::alphabet_len`]/[`PreparedQuery::code_base`].
#[inline]
pub(crate) fn tuple_code(
    tapes: &[usize],
    letters: &[Option<Symbol>],
    alphabet_len: usize,
    base: u64,
) -> u64 {
    let mut code = 0u64;
    let mut mult = 1u64;
    for &t in tapes {
        code += letter_digit(letters[t], alphabet_len, base) * mult;
        mult *= base;
    }
    code
}

/// Dense simulation tables of one relation automaton plus the tuple-letter
/// code index used to avoid materializing `TupleSym` values in the hot loop.
/// The tables themselves come from the [`RegularRelation`] memoization; only
/// the (cheap) code index is built per prepared query.
#[derive(Clone, Debug)]
pub(crate) struct RelSim {
    /// Dense transition tables + ε-closures + bitset state sets (shared with
    /// every other prepared query using this relation).
    pub sim: Arc<CompactNfa<TupleSym>>,
    /// Encoded tuple letter → dense symbol id of `sim`.
    pub codes: CodeMap,
}

impl RelSim {
    fn build(rel: &RegularRelation, code_base: u64) -> RelSim {
        let sim = rel.compiled_sim();
        let pairs = sim.symbols().iter().enumerate().map(|(sid, t)| {
            let mut code = 0u64;
            let mut mult = 1u64;
            for i in 0..t.arity() {
                // Exact digits: every relation symbol index is < base - 1 by
                // the radix computation in `prepare`, so the foreign digit
                // can never appear in the code map.
                let digit = match t.get(i) {
                    None => 0,
                    Some(s) => {
                        debug_assert!((s.0 as u64) < code_base - 1);
                        s.0 as u64 + 1
                    }
                };
                code += digit * mult;
                mult *= code_base;
            }
            (code, sid as u32)
        });
        let arity = sim.symbols().first().map_or(0, |t| t.arity());
        let space = code_base.saturating_pow(arity as u32);
        let codes = if space <= CODE_MAP_DENSE_LIMIT {
            let mut table = vec![u32::MAX; space as usize];
            for (code, sid) in pairs {
                table[code as usize] = sid;
            }
            CodeMap::Dense(table)
        } else {
            CodeMap::Hash(pairs.collect())
        };
        RelSim { sim, codes }
    }
}

/// A compiled relation atom: the synchronous automaton plus the indices of
/// the path variables on its tapes, with lazily compiled simulation tables
/// so plain-CRPQ evaluation (which never runs the convolution search) pays
/// nothing for them.
#[derive(Debug)]
pub(crate) struct CompiledRel {
    /// The relation (shared automaton handle + its compiled-artifact caches).
    pub rel: RegularRelation,
    /// The synchronous automaton (same handle the relation owns).
    pub nfa: Arc<Nfa<TupleSym>>,
    /// Path-variable indices on the relation's tapes.
    pub tapes: Vec<usize>,
    /// Per-prepared-query code index over the shared tables.
    sim_cell: OnceLock<RelSim>,
}

impl CompiledRel {
    /// The compiled simulation tables (built on first call, then cached both
    /// here and — for the expensive table part — inside the relation).
    pub fn sim(&self, code_base: u64) -> &RelSim {
        self.sim_cell.get_or_init(|| RelSim::build(&self.rel, code_base))
    }
}

/// The per-path-variable unary constraint: the intersection of the arity-1
/// language atoms and per-tape projections of every relation atom that
/// mentions the variable, plus a handle to its compiled simulation tables.
#[derive(Debug)]
pub(crate) struct UnaryPlan {
    /// The constraint automaton over Σ.
    pub nfa: Arc<Nfa<Symbol>>,
    /// `Some((relation index, tape))` when the constraint is exactly one
    /// relation-tape projection: the compiled tables then come from (and are
    /// cached in) the relation itself, shared across queries.
    pub(crate) source: Option<(usize, usize)>,
    /// Compiled tables for intersected constraints (owned by this query).
    pub(crate) sim_cell: OnceLock<Arc<CompactNfa<Symbol>>>,
    /// Compiled tables of the *reversed* constraint automaton, for
    /// planner-chosen reverse BFS (owned by this query — the relation cache
    /// only stores forward projections).
    pub(crate) rev_sim_cell: OnceLock<Arc<CompactNfa<Symbol>>>,
    /// Precomputed [`dense_eligible`] verdict.
    pub dense: bool,
}

/// A compiled linear-constraint row: per path variable, a length coefficient
/// and per-symbol coefficients (over the query alphabet; coefficients on
/// graph-only labels are resolved at bind time).
#[derive(Clone, Debug)]
pub(crate) struct CounterRow {
    pub length_coeff: Vec<i64>,
    pub symbol_coeff: Vec<Vec<i64>>,
    pub op: CmpOp,
    pub constant: i64,
}

impl CounterRow {
    /// The contribution of one step of path variable `var` reading `label`.
    pub fn step_delta(&self, var: usize, label: Symbol) -> i64 {
        let mut d = self.length_coeff[var];
        if let Some(per_sym) = self.symbol_coeff.get(var) {
            if let Some(&c) = per_sym.get(label.index()) {
                d += c;
            }
        }
        d
    }

    /// Whether a final accumulated value satisfies the row.
    pub fn satisfied(&self, value: i64) -> bool {
        match self.op {
            CmpOp::Ge => value >= self.constant,
            CmpOp::Eq => value == self.constant,
            CmpOp::Le => value <= self.constant,
        }
    }
}

/// A label-count term whose label is not in the query alphabet; resolved
/// against the merged alphabet when the query is bound to a graph.
#[derive(Clone, Debug)]
struct DeferredCountTerm {
    row: usize,
    path: usize,
    label: String,
    coeff: i64,
}

/// A query compiled independently of any graph: validated, densely numbered,
/// with shared handles to every automaton artifact evaluation needs.
///
/// Prepare once, then [`bind`](Self::bind) to each graph. All `eval_*` entry
/// points of [`crate::eval`] are thin wrappers over this type.
#[derive(Debug)]
pub struct PreparedQuery {
    /// The validated query (kept for [`std::fmt::Display`], `Q_len`
    /// evaluation, and the reference engine).
    pub(crate) query: Ecrpq,
    /// Distinct node variables (dense indices).
    pub(crate) node_vars: Vec<String>,
    /// Distinct path variables (dense indices).
    pub(crate) path_vars: Vec<String>,
    /// Per path variable: node-variable indices of its endpoints (from the
    /// first relational atom that binds it).
    pub(crate) path_from: Vec<usize>,
    pub(crate) path_to: Vec<usize>,
    /// Additional endpoint constraints from repeated relational atoms:
    /// `(path var, from node var, to node var)`.
    pub(crate) extra_endpoints: Vec<(usize, usize, usize)>,
    /// Compiled relation atoms (arity ≥ 1).
    pub(crate) relations: Vec<CompiledRel>,
    /// Per path variable: its unary constraint, or `None` if unconstrained.
    pub(crate) unary: Vec<Option<UnaryPlan>>,
    /// Head node variables as indices into `node_vars`.
    pub(crate) head_node_idx: Vec<usize>,
    /// Head path variables as indices into `path_vars`.
    pub(crate) head_path_idx: Vec<usize>,
    /// Node variables bound to named graph constants (names resolved to
    /// `NodeId`s at bind time).
    pub(crate) constants: Vec<(usize, String)>,
    /// Compiled linear constraints (empty for plain queries).
    pub(crate) counters: Vec<CounterRow>,
    /// Label-count terms whose label the query alphabet does not contain.
    deferred_counts: Vec<DeferredCountTerm>,
    /// Size of the query alphabet (merged indices at or past this are
    /// foreign graph labels).
    pub(crate) alphabet_len: usize,
    /// Radix for [`tuple_code`]: digit 0 is `⊥`, digits `1..=|Σ|` are query
    /// symbols, and the top digit is reserved for foreign graph labels.
    pub(crate) code_base: u64,
    /// True if verification by convolution search is unnecessary (plain CRPQ
    /// without repetition or counters).
    pub(crate) relaxation_is_exact: bool,
    /// True if every relation automaton is small enough for the dense
    /// product engine; otherwise candidate verification and the
    /// answer-automaton construction fall back to the sparse classical loop.
    pub(crate) dense_search: bool,
    /// Per node variable: total unary-automaton states over incident path
    /// variables — the selectivity hint the join-order heuristic combines
    /// with variable connectivity.
    pub(crate) var_weight: Vec<usize>,
}

impl PreparedQuery {
    /// Compiles `query` into its graph-independent prepared form.
    pub fn prepare(query: &Ecrpq) -> Result<PreparedQuery, QueryError> {
        query.validate()?;

        // Dense numbering of node and path variables.
        let node_vars: Vec<String> = query.node_vars().into_iter().map(|v| v.0).collect();
        let node_index: HashMap<&str, usize> =
            node_vars.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();
        let path_vars: Vec<String> = query.path_vars().into_iter().map(|v| v.0).collect();
        let path_index: HashMap<&str, usize> =
            path_vars.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();

        // Endpoints per path variable; extra atoms binding the same path
        // variable become additional endpoint constraints.
        let mut path_from = vec![usize::MAX; path_vars.len()];
        let mut path_to = vec![usize::MAX; path_vars.len()];
        let mut extra_endpoints = Vec::new();
        for a in &query.atoms {
            let p = path_index[a.path.name()];
            let f = node_index[a.from.name()];
            let t = node_index[a.to.name()];
            if path_from[p] == usize::MAX {
                path_from[p] = f;
                path_to[p] = t;
            } else {
                extra_endpoints.push((p, f, t));
            }
        }

        // Tuple-code radix: one digit per query symbol plus `⊥` and the
        // reserved foreign digit. Relations pre-built against a larger
        // alphabet widen the radix so their symbols keep unique digits (the
        // max-symbol scan is memoized inside each relation).
        let mut max_sym = query.alphabet.len() as u64;
        for r in &query.relations {
            if let Some(s) = r.relation.max_symbol_index() {
                max_sym = max_sym.max(s as u64 + 1);
            }
        }
        let code_base = max_sym + 2;

        // Compile relation atoms. The dense simulation tables are built
        // lazily (see [`CompiledRel::sim`]); only the size check runs here.
        let relations: Vec<CompiledRel> = query
            .relations
            .iter()
            .map(|r| CompiledRel {
                rel: r.relation.clone(),
                nfa: r.relation.nfa_shared(),
                tapes: r.paths.iter().map(|p| path_index[p.name()]).collect(),
                sim_cell: OnceLock::new(),
            })
            .collect();
        // Dense engines also require every relation's tuple-letter code to
        // fit in u64 (`tuple_code` packs one base-`code_base` digit per
        // tape); otherwise codes could wrap and collide, so such queries use
        // the reference engine, which never encodes letters.
        let dense_search = relations.iter().all(|r| {
            dense_eligible(&r.nfa) && code_base.checked_pow(r.tapes.len() as u32).is_some()
        });

        // Per-path unary constraint: intersection of projections of every
        // relation atom that mentions the path variable. A single-projection
        // constraint keeps a pointer back to its relation so the compiled
        // tables come from the relation's shared cache.
        let mut sources: Vec<Vec<(usize, usize)>> = vec![Vec::new(); path_vars.len()];
        for (j, r) in query.relations.iter().enumerate() {
            for (tape, p) in r.paths.iter().enumerate() {
                sources[path_index[p.name()]].push((j, tape));
            }
        }
        let unary: Vec<Option<UnaryPlan>> = sources
            .iter()
            .map(|srcs| match srcs.as_slice() {
                [] => None,
                &[(j, tape)] => {
                    let nfa = query.relations[j].relation.project(tape);
                    let dense = dense_eligible(&nfa);
                    Some(UnaryPlan {
                        nfa,
                        source: Some((j, tape)),
                        sim_cell: OnceLock::new(),
                        rev_sim_cell: OnceLock::new(),
                        dense,
                    })
                }
                srcs => {
                    let mut acc: Option<Arc<Nfa<Symbol>>> = None;
                    for &(j, tape) in srcs {
                        let proj = query.relations[j].relation.project(tape);
                        acc = Some(match acc {
                            None => proj,
                            Some(existing) => Arc::new(existing.intersect(&proj).trim()),
                        });
                    }
                    let nfa = acc.expect("non-empty source list");
                    let dense = dense_eligible(&nfa);
                    Some(UnaryPlan {
                        nfa,
                        source: None,
                        sim_cell: OnceLock::new(),
                        rev_sim_cell: OnceLock::new(),
                        dense,
                    })
                }
            })
            .collect();

        // Node constants stay names until a graph is bound.
        let constants: Vec<(usize, String)> = query
            .node_constants
            .iter()
            .map(|(v, name)| (node_index[v.name()], name.clone()))
            .collect();

        // Compile linear constraints over the query alphabet; terms counting
        // labels the query alphabet lacks are deferred to bind time.
        let (counters, deferred_counts) = compile_counters(
            &query.linear_constraints,
            &path_index,
            path_vars.len(),
            &query.alphabet,
        );

        let head_node_idx = query.head_nodes.iter().map(|v| node_index[v.name()]).collect();
        let head_path_idx = query.head_paths.iter().map(|p| path_index[p.name()]).collect();

        let has_wide_relation = relations.iter().any(|r| r.tapes.len() >= 2);
        let relaxation_is_exact =
            !has_wide_relation && !query.has_relational_repetition() && counters.is_empty();

        // Join-order hint: per node variable, the total state count of the
        // unary automata on its incident path variables (smaller automata
        // tend to give sparser reachability relations).
        let mut var_weight = vec![0usize; node_vars.len()];
        for p in 0..path_vars.len() {
            let w = unary[p].as_ref().map_or(0, |u| u.nfa.num_states());
            var_weight[path_from[p]] += w;
            var_weight[path_to[p]] += w;
        }

        Ok(PreparedQuery {
            alphabet_len: query.alphabet.len(),
            query: query.clone(),
            node_vars,
            path_vars,
            path_from,
            path_to,
            extra_endpoints,
            relations,
            unary,
            head_node_idx,
            head_path_idx,
            constants,
            counters,
            deferred_counts,
            code_base,
            relaxation_is_exact,
            dense_search,
            var_weight,
        })
    }

    /// The query this plan was prepared from.
    pub fn query(&self) -> &Ecrpq {
        &self.query
    }

    /// Binds the prepared query to one graph: resolves named-node constants,
    /// builds the symbol translation and a label-translated CSR adjacency,
    /// and resolves deferred label-count coefficients. No automaton is
    /// compiled here — binding is cheap and linear in the graph size.
    pub fn bind<'a>(&'a self, graph: &'a GraphDb) -> Result<BoundPlan<'a>, QueryError> {
        self.bind_with(graph, EvalOptions::default())
    }

    /// [`bind`](Self::bind) with explicit execution options (intra-query
    /// thread count). The options travel with the bound plan: every `run*`,
    /// `check`, and `answer_automaton` call on it uses them.
    pub fn bind_with<'a>(
        &'a self,
        graph: &'a GraphDb,
        options: EvalOptions,
    ) -> Result<BoundPlan<'a>, QueryError> {
        Ok(BoundPlan { pq: self, graph, art: Cow::Owned(self.bind_artifacts(graph)?), options })
    }

    /// Computes everything [`bind`](Self::bind) resolves against one concrete
    /// graph, as an owned value. [`BoundStatement`] stores this next to
    /// shared handles of the query and graph so a bound plan can be cached
    /// and shared across threads.
    fn bind_artifacts(&self, graph: &GraphDb) -> Result<BindArtifacts, QueryError> {
        // Merge the query alphabet with the graph alphabet (appending any
        // labels the query does not know, so relation symbols stay valid).
        let mut merged_alphabet = self.query.alphabet.clone();
        let graph_symbol_map: Vec<Symbol> =
            graph.alphabet().iter().map(|(_, label)| merged_alphabet.intern(label)).collect();

        // Resolve node constants.
        let mut constants = Vec::new();
        for (v, name) in &self.constants {
            let node = graph
                .node_by_name(name)
                .ok_or_else(|| QueryError::UnknownGraphNode(name.clone()))?;
            constants.push((*v, node));
        }

        // Resolve deferred label-count coefficients against the merged
        // alphabet (a constraint may count a label only the graph knows).
        let mut counters = self.counters.clone();
        for d in &self.deferred_counts {
            let sym = merged_alphabet.symbol(&d.label).ok_or_else(|| {
                QueryError::InvalidLinearConstraint(format!(
                    "label `{}` is not in the query or graph alphabet",
                    d.label
                ))
            })?;
            let row = &mut counters[d.row].symbol_coeff[d.path];
            if row.len() <= sym.index() {
                row.resize(sym.index() + 1, 0);
            }
            row[sym.index()] += d.coeff;
        }

        // CSR adjacency with labels pre-translated into the merged alphabet,
        // shared by every reachability computation on this plan.
        let n = graph.num_nodes();
        let mut csr_off = vec![0u32; n + 1];
        for v in graph.nodes() {
            csr_off[v.index() + 1] = csr_off[v.index()] + graph.out_edges(v).len() as u32;
        }
        let total = csr_off[n] as usize;
        let mut csr_to = vec![0u32; total];
        let mut csr_label = vec![Symbol(0); total];
        let mut cursor = csr_off.clone();
        for v in graph.nodes() {
            for &(l, to) in graph.out_edges(v) {
                let c = cursor[v.index()] as usize;
                csr_to[c] = to.0;
                csr_label[c] = graph_symbol_map[l.index()];
                cursor[v.index()] += 1;
            }
        }

        // The reverse view of the same adjacency, for planner-chosen reverse
        // BFS. Built from the graph's cached in-degrees in one pass.
        let mut rev_off = vec![0u32; n + 1];
        for (v, &d) in graph.in_degrees().iter().enumerate() {
            rev_off[v + 1] = rev_off[v] + d;
        }
        let mut rev_to = vec![0u32; total];
        let mut rev_label = vec![Symbol(0); total];
        let mut rev_cursor = rev_off.clone();
        for v in graph.nodes() {
            for &(l, to) in graph.out_edges(v) {
                let c = rev_cursor[to.index()] as usize;
                rev_to[c] = v.0;
                rev_label[c] = graph_symbol_map[l.index()];
                rev_cursor[to.index()] += 1;
            }
        }

        Ok(BindArtifacts {
            merged_len: merged_alphabet.len(),
            graph_symbol_map,
            constants,
            counters,
            csr_off,
            csr_to,
            csr_label,
            rev_off,
            rev_to,
            rev_label,
        })
    }

    /// Convenience: bind and run in one call (node answers only).
    pub fn run(
        &self,
        graph: &GraphDb,
        config: &EvalConfig,
    ) -> Result<(Vec<Answer>, EvalStats), QueryError> {
        self.bind(graph)?.run(config)
    }

    /// Forces compilation of every automaton artifact the dense engines can
    /// use (relation tables and dense-eligible unary tables). Returns the
    /// cache counters: `(hits, misses)` — on a warmed query the second call
    /// reports only hits. Used by the benchmark harness to measure compile
    /// cost as an explicit, separate phase.
    pub fn warm(&self) -> (u64, u64) {
        let mut stats = EvalStats::default();
        if self.dense_search {
            self.force_rel_sims(&mut stats);
        }
        for p in 0..self.path_vars.len() {
            if self.unary[p].as_ref().is_some_and(|u| u.dense) {
                let _ = self.unary_sim(p, &mut stats);
            }
        }
        (stats.sim_cache_hits, stats.sim_cache_misses)
    }

    /// [`warm`](Self::warm) plus the *reversed* unary tables: forces every
    /// compiled artifact any run of this query could ever touch, including
    /// the reverse-BFS tables the planner may pick at evaluation time. The
    /// snapshot sidecar writer calls this before serializing, so a warm
    /// reopen reports zero `sim_cache_misses` no matter which direction the
    /// planner chooses.
    pub fn warm_full(&self) -> (u64, u64) {
        let (hits, misses) = self.warm();
        let mut stats = EvalStats::default();
        for p in 0..self.path_vars.len() {
            if self.unary[p].as_ref().is_some_and(|u| u.dense) {
                let _ = self.unary_rev_sim(p, &mut stats);
            }
        }
        (hits + stats.sim_cache_hits, misses + stats.sim_cache_misses)
    }

    /// Compiles (or fetches) the dense tables of every relation automaton,
    /// recording cache hits/misses. A hit means the expensive table
    /// compilation was skipped because a previous run (or another query
    /// sharing the relation) already built it.
    pub(crate) fn force_rel_sims(&self, stats: &mut EvalStats) {
        for r in &self.relations {
            if r.rel.compiled_sim_is_cached() {
                stats.sim_cache_hits += 1;
            } else {
                stats.sim_cache_misses += 1;
            }
            let _ = r.sim(self.code_base);
        }
    }

    /// The compiled tables of path variable `p`'s unary constraint,
    /// recording a cache hit or miss. Single-projection constraints share
    /// the relation's cache (closing the `plan::reachability` recompilation
    /// item); intersected constraints cache inside this prepared query.
    pub(crate) fn unary_sim(&self, p: usize, stats: &mut EvalStats) -> Arc<CompactNfa<Symbol>> {
        let u = self.unary[p].as_ref().expect("unary_sim on an unconstrained path variable");
        match u.source {
            Some((j, tape)) => {
                let rel = &self.relations[j].rel;
                if rel.projection_sim_is_cached(tape) {
                    stats.sim_cache_hits += 1;
                } else {
                    stats.sim_cache_misses += 1;
                }
                rel.projection_sim(tape)
            }
            None => {
                if u.sim_cell.get().is_some() {
                    stats.sim_cache_hits += 1;
                } else {
                    stats.sim_cache_misses += 1;
                }
                Arc::clone(
                    u.sim_cell.get_or_init(|| {
                        Arc::new(CompactNfa::compile(&dfa::reduce_for_tables(&u.nfa)))
                    }),
                )
            }
        }
    }

    /// The compiled tables of the *reversed* unary constraint of path
    /// variable `p`, for planner-chosen reverse BFS, recording a cache hit
    /// or miss. Always cached inside this prepared query (the relation cache
    /// only holds forward projections).
    pub(crate) fn unary_rev_sim(&self, p: usize, stats: &mut EvalStats) -> Arc<CompactNfa<Symbol>> {
        let u = self.unary[p].as_ref().expect("unary_rev_sim on an unconstrained path variable");
        if u.rev_sim_cell.get().is_some() {
            stats.sim_cache_hits += 1;
        } else {
            stats.sim_cache_misses += 1;
        }
        Arc::clone(u.rev_sim_cell.get_or_init(|| {
            Arc::new(CompactNfa::compile(&dfa::reduce_for_tables(&u.nfa.reverse())))
        }))
    }
}

fn compile_counters(
    constraints: &[QLinearConstraint],
    path_index: &HashMap<&str, usize>,
    num_paths: usize,
    alphabet: &Alphabet,
) -> (Vec<CounterRow>, Vec<DeferredCountTerm>) {
    let mut rows = Vec::new();
    let mut deferred = Vec::new();
    for (ri, c) in constraints.iter().enumerate() {
        let mut length_coeff = vec![0i64; num_paths];
        let mut symbol_coeff = vec![vec![0i64; alphabet.len()]; num_paths];
        for (coef, target) in &c.terms {
            match target {
                CountTarget::Length(p) => {
                    let pi = path_index[p.name()];
                    length_coeff[pi] += coef;
                }
                CountTarget::LabelCount(p, label) => {
                    let pi = path_index[p.name()];
                    match alphabet.symbol(label) {
                        Some(sym) => symbol_coeff[pi][sym.index()] += coef,
                        None => deferred.push(DeferredCountTerm {
                            row: ri,
                            path: pi,
                            label: label.clone(),
                            coeff: *coef,
                        }),
                    }
                }
            }
        }
        rows.push(CounterRow { length_coeff, symbol_coeff, op: c.op, constant: c.constant });
    }
    (rows, deferred)
}

/// Everything [`PreparedQuery::bind`] resolves against one concrete graph:
/// the symbol translation into the merged alphabet, resolved node constants,
/// counters with bind-time labels, and a label-translated CSR adjacency.
///
/// Owned and clonable so a bound plan can outlive a borrow: [`BoundPlan`]
/// holds it as [`Cow`] (owned when freshly bound, borrowed when viewed
/// through a cached [`BoundStatement`]).
#[derive(Clone, Debug)]
pub(crate) struct BindArtifacts {
    /// Size of the merged (query + graph) alphabet.
    pub(crate) merged_len: usize,
    /// Translation from graph symbols to merged-alphabet symbols.
    pub(crate) graph_symbol_map: Vec<Symbol>,
    /// Node variables bound to resolved graph constants.
    pub(crate) constants: Vec<(usize, NodeId)>,
    /// Linear-constraint rows with bind-time labels resolved.
    pub(crate) counters: Vec<CounterRow>,
    /// CSR adjacency offsets (per node).
    pub(crate) csr_off: Vec<u32>,
    /// CSR adjacency targets.
    pub(crate) csr_to: Vec<u32>,
    /// CSR edge labels, pre-translated into the merged alphabet.
    pub(crate) csr_label: Vec<Symbol>,
    /// Reverse CSR offsets (per node), for planner-chosen reverse BFS.
    pub(crate) rev_off: Vec<u32>,
    /// Reverse CSR sources (the edge's origin node).
    pub(crate) rev_to: Vec<u32>,
    /// Reverse CSR edge labels, pre-translated into the merged alphabet.
    pub(crate) rev_label: Vec<Symbol>,
}

/// A prepared query bound to one concrete graph: symbol translation, resolved
/// node constants, resolved counters, and a label-translated CSR adjacency.
///
/// Binding performs no automaton compilation; `run*` reuses everything the
/// [`PreparedQuery`] (and the relations inside it) already compiled.
#[derive(Debug)]
pub struct BoundPlan<'a> {
    pub(crate) pq: &'a PreparedQuery,
    pub(crate) graph: &'a GraphDb,
    /// The bind-time data: owned for a fresh [`PreparedQuery::bind`],
    /// borrowed (no copy) when viewed through a [`BoundStatement`].
    art: Cow<'a, BindArtifacts>,
    /// Execution options (intra-query thread count).
    options: EvalOptions,
}

impl<'a> BoundPlan<'a> {
    /// The prepared query this plan binds.
    pub fn prepared(&self) -> &'a PreparedQuery {
        self.pq
    }

    /// The execution options this plan runs with.
    pub fn options(&self) -> EvalOptions {
        self.options
    }

    /// This plan with different execution options (e.g. a per-request thread
    /// count override).
    pub fn with_options(mut self, options: EvalOptions) -> BoundPlan<'a> {
        self.options = options;
        self
    }

    /// The graph this plan is bound to.
    pub fn graph(&self) -> &'a GraphDb {
        self.graph
    }

    /// Node variables bound to resolved graph constants.
    pub(crate) fn constants(&self) -> &[(usize, NodeId)] {
        &self.art.constants
    }

    /// Linear-constraint rows with bind-time labels resolved.
    pub(crate) fn counters(&self) -> &[CounterRow] {
        &self.art.counters
    }

    /// Size of the merged (query + graph) alphabet.
    pub(crate) fn merged_len(&self) -> usize {
        self.art.merged_len
    }

    /// Translates a graph edge label into the merged alphabet.
    #[inline]
    pub(crate) fn translate(&self, graph_label: Symbol) -> Symbol {
        self.art.graph_symbol_map[graph_label.index()]
    }

    /// The CSR out-edge range of `node` as `(targets, merged labels)`.
    #[inline]
    pub(crate) fn csr_out(&self, node: usize) -> (&[u32], &[Symbol]) {
        let (lo, hi) = (self.art.csr_off[node] as usize, self.art.csr_off[node + 1] as usize);
        (&self.art.csr_to[lo..hi], &self.art.csr_label[lo..hi])
    }

    /// The reverse-CSR in-edge range of `node` as `(sources, merged labels)`.
    #[inline]
    pub(crate) fn csr_in(&self, node: usize) -> (&[u32], &[Symbol]) {
        let (lo, hi) = (self.art.rev_off[node] as usize, self.art.rev_off[node + 1] as usize);
        (&self.art.rev_to[lo..hi], &self.art.rev_label[lo..hi])
    }

    /// Derives the step bound used when counters are present.
    pub(crate) fn step_bound(&self, config: &EvalConfig) -> usize {
        if let Some(b) = config.max_convolution_steps {
            return b;
        }
        let rel_states: usize = self.pq.relations.iter().map(|r| r.nfa.num_states()).sum();
        (self.graph.num_nodes() * (1 + rel_states)).clamp(64, 100_000)
    }

    /// Runs the query: full answers with witness paths when the head has
    /// path variables, node tuples otherwise.
    pub fn run(&self, config: &EvalConfig) -> Result<(Vec<Answer>, EvalStats), QueryError> {
        let mode = if self.pq.head_path_idx.is_empty() { Mode::Nodes } else { Mode::Paths };
        self.run_mode(config, mode, Engine::Dense)
    }

    /// Runs the query, returning the set of head-node tuples and statistics.
    pub fn run_nodes(
        &self,
        config: &EvalConfig,
    ) -> Result<(Vec<Vec<NodeId>>, EvalStats), QueryError> {
        let (answers, stats) = self.run_mode(config, Mode::Nodes, Engine::Dense)?;
        Ok((answers.into_iter().map(|a| a.nodes).collect(), stats))
    }

    /// Runs the query as a Boolean query (stops at the first answer).
    pub fn run_boolean(&self, config: &EvalConfig) -> Result<(bool, EvalStats), QueryError> {
        let (answers, stats) = self.run_mode(config, Mode::Boolean, Engine::Dense)?;
        Ok((!answers.is_empty(), stats))
    }

    /// Runs the query, materializing up to `config.answer_limit` answers
    /// with explicit witness paths for the head path variables.
    pub fn run_with_paths(
        &self,
        config: &EvalConfig,
    ) -> Result<(Vec<Answer>, EvalStats), QueryError> {
        self.run_mode(config, Mode::Paths, Engine::Dense)
    }

    /// The `ECRPQ-EVAL` membership check: does `(nodes, paths)` belong to
    /// `Q(G)`?
    pub fn check(
        &self,
        nodes: &[NodeId],
        paths: &[Path],
        config: &EvalConfig,
    ) -> Result<bool, QueryError> {
        self.check_engine(nodes, paths, config, Engine::Dense)
    }

    /// Runs like [`run`](Self::run) while recording per-phase wall-clock
    /// spans (`plan`, per-atom `reach:<var>` BFS, sim-table `compile`,
    /// product `search`) into `trace` — the engine half of the server's
    /// EXPLAIN ANALYZE-style `trace` op. Measured per-atom timings and pair
    /// counts sit next to the planner's estimates as span attributes.
    pub fn run_traced(
        &self,
        config: &EvalConfig,
        trace: &mut Trace,
    ) -> Result<(Vec<Answer>, EvalStats), QueryError> {
        let mode = if self.pq.head_path_idx.is_empty() { Mode::Nodes } else { Mode::Paths };
        self.run_mode_traced(config, mode, Engine::Dense, Some(trace))
    }

    /// [`run_boolean`](Self::run_boolean) with span collection.
    pub fn run_boolean_traced(
        &self,
        config: &EvalConfig,
        trace: &mut Trace,
    ) -> Result<(bool, EvalStats), QueryError> {
        let (answers, stats) =
            self.run_mode_traced(config, Mode::Boolean, Engine::Dense, Some(trace))?;
        Ok((!answers.is_empty(), stats))
    }

    /// [`run_nodes`](Self::run_nodes) with span collection.
    pub fn run_nodes_traced(
        &self,
        config: &EvalConfig,
        trace: &mut Trace,
    ) -> Result<(Vec<Vec<NodeId>>, EvalStats), QueryError> {
        let (answers, stats) =
            self.run_mode_traced(config, Mode::Nodes, Engine::Dense, Some(trace))?;
        Ok((answers.into_iter().map(|a| a.nodes).collect(), stats))
    }

    /// [`run_with_paths`](Self::run_with_paths) with span collection.
    pub fn run_with_paths_traced(
        &self,
        config: &EvalConfig,
        trace: &mut Trace,
    ) -> Result<(Vec<Answer>, EvalStats), QueryError> {
        self.run_mode_traced(config, Mode::Paths, Engine::Dense, Some(trace))
    }

    /// Evaluates the plan in the requested mode with an explicit engine.
    pub(crate) fn run_mode(
        &self,
        config: &EvalConfig,
        mode: Mode,
        engine: Engine,
    ) -> Result<(Vec<Answer>, EvalStats), QueryError> {
        self.run_mode_traced(config, mode, engine, None)
    }

    /// [`run_mode`](Self::run_mode), optionally recording phase spans. The
    /// untraced path pays one `Option` check per phase and no clock reads.
    pub(crate) fn run_mode_traced(
        &self,
        config: &EvalConfig,
        mode: Mode,
        engine: Engine,
        mut trace: Option<&mut Trace>,
    ) -> Result<(Vec<Answer>, EvalStats), QueryError> {
        let pq = self.pq;
        let mut stats = EvalStats::default();

        // Plan, then compute the reachability relation of every path
        // variable with its planned direction and pin.
        let sp = qtrace::begin_span(&mut trace, "plan");
        let qplan = plan::cost::plan_query(self, self.constants(), self.options.planner);
        qtrace::span_attr(&mut trace, sp, "atoms", pq.path_vars.len() as u64);
        qtrace::end_span(&mut trace, sp);
        let reach: Vec<ReachRel> = (0..pq.path_vars.len())
            .map(|p| {
                let sp = trace.as_mut().map(|t| t.begin(&format!("reach:{}", pq.path_vars[p])));
                let r = plan::reachability_planned(self, p, &qplan.atoms[p], &mut stats);
                if trace.is_some() {
                    let pairs: u64 = r.fwd.iter().map(|row| row.len() as u64).sum();
                    qtrace::span_attr(&mut trace, sp, "pairs", pairs);
                    let est = qplan.atoms[p].est_pairs;
                    if est.is_finite() {
                        qtrace::span_attr(&mut trace, sp, "est_pairs", est.max(0.0) as u64);
                    }
                }
                qtrace::end_span(&mut trace, sp);
                r
            })
            .collect();

        let needs_search = !pq.relaxation_is_exact || mode == Mode::Paths;
        if needs_search && engine == Engine::Dense && pq.dense_search {
            let sp = qtrace::begin_span(&mut trace, "compile");
            let before = (stats.sim_cache_hits, stats.sim_cache_misses);
            pq.force_rel_sims(&mut stats);
            qtrace::span_attr(&mut trace, sp, "sim_cache_hits", stats.sim_cache_hits - before.0);
            qtrace::span_attr(
                &mut trace,
                sp,
                "sim_cache_misses",
                stats.sim_cache_misses - before.1,
            );
            qtrace::end_span(&mut trace, sp);
        }
        let step_bound =
            if self.counters().is_empty() { None } else { Some(self.step_bound(config)) };

        let mut answers: Vec<Answer> = Vec::new();
        let mut seen_heads: HashSet<Vec<NodeId>> = HashSet::new();
        let mut seen_answers: HashSet<(Vec<NodeId>, Vec<Path>)> = HashSet::new();
        let mut error: Option<QueryError> = None;
        let mut verified: u64 = 0;
        let mut search_states: u64 = 0;

        let order = Some(qplan.order.as_slice());
        let search_span = qtrace::begin_span(&mut trace, "search");
        plan::enumerate_candidates(
            self,
            self.constants(),
            &reach,
            order,
            config,
            &mut stats,
            |sigma| {
                let head: Vec<NodeId> = pq.head_node_idx.iter().map(|&i| sigma[i]).collect();
                if mode == Mode::Nodes && seen_heads.contains(&head) {
                    return true;
                }
                if !needs_search {
                    verified += 1;
                    seen_heads.insert(head.clone());
                    answers.push(Answer { nodes: head, paths: Vec::new() });
                    return mode != Mode::Boolean;
                }
                // Verify the candidate with the convolution search.
                let problem = SearchProblem {
                    plan: self,
                    sigma: sigma.to_vec(),
                    pinned: vec![None; pq.path_vars.len()],
                    want_witness: mode == Mode::Paths,
                    step_bound,
                    max_states: config.max_search_states,
                };
                match engine.run(&problem) {
                    Ok(out) if !out.accepted => {
                        search_states += out.states_visited;
                        true
                    }
                    Ok(out) => {
                        search_states += out.states_visited;
                        verified += 1;
                        seen_heads.insert(head.clone());
                        let paths = match out.witness {
                            Some(w) => pq.head_path_idx.iter().map(|&p| w[p].clone()).collect(),
                            None => Vec::new(),
                        };
                        if mode == Mode::Paths {
                            if seen_answers.insert((head.clone(), paths.clone())) {
                                answers.push(Answer { nodes: head, paths });
                            }
                            answers.len() < config.answer_limit
                        } else {
                            answers.push(Answer { nodes: head, paths });
                            mode != Mode::Boolean
                        }
                    }
                    Err(e) => {
                        error = Some(e);
                        false
                    }
                }
            },
        )?;

        stats.verified = verified;
        stats.search_states = search_states;
        qtrace::span_attr(&mut trace, search_span, "candidates", stats.candidates);
        qtrace::span_attr(&mut trace, search_span, "verified", stats.verified);
        qtrace::span_attr(&mut trace, search_span, "search_states", stats.search_states);
        qtrace::span_attr(&mut trace, search_span, "answers", answers.len() as u64);
        qtrace::end_span(&mut trace, search_span);
        if let Some(e) = error {
            return Err(e);
        }
        Ok((answers, stats))
    }

    /// The membership check with an explicit verification engine.
    pub(crate) fn check_engine(
        &self,
        nodes: &[NodeId],
        paths: &[Path],
        config: &EvalConfig,
        engine: Engine,
    ) -> Result<bool, QueryError> {
        let pq = self.pq;
        if nodes.len() != pq.head_node_idx.len() || paths.len() != pq.head_path_idx.len() {
            return Err(QueryError::Unsupported(format!(
                "membership check expects {} node values and {} path values",
                pq.head_node_idx.len(),
                pq.head_path_idx.len()
            )));
        }
        for p in paths {
            if !p.is_valid_in(self.graph) {
                return Ok(false);
            }
        }

        // Pin head paths and derive node-variable bindings from them and
        // from the head node values / constants.
        let mut pinned: Vec<Option<&Path>> = vec![None; pq.path_vars.len()];
        let mut forced: HashMap<usize, NodeId> = HashMap::new();
        let force = |var: usize, value: NodeId, forced: &mut HashMap<usize, NodeId>| -> bool {
            match forced.get(&var) {
                Some(&v) => v == value,
                None => {
                    forced.insert(var, value);
                    true
                }
            }
        };
        for (i, &pi) in pq.head_path_idx.iter().enumerate() {
            pinned[pi] = Some(&paths[i]);
            if !force(pq.path_from[pi], paths[i].start(), &mut forced)
                || !force(pq.path_to[pi], paths[i].end(), &mut forced)
            {
                return Ok(false);
            }
        }
        for (i, &vi) in pq.head_node_idx.iter().enumerate() {
            if !force(vi, nodes[i], &mut forced) {
                return Ok(false);
            }
        }
        for &(vi, n) in self.constants() {
            if !force(vi, n, &mut forced) {
                return Ok(false);
            }
        }
        // Extra endpoint constraints from repeated atoms must also agree.
        for &(p, f, t) in &pq.extra_endpoints {
            if let Some(path) = pinned[p] {
                if !force(f, path.start(), &mut forced) || !force(t, path.end(), &mut forced) {
                    return Ok(false);
                }
            }
        }

        // Reachability for the remaining join, with forced values taking the
        // place of the plan's constants. The forced list is sorted by
        // variable index so the planner (and thus the plan) is deterministic
        // regardless of `HashMap` iteration order.
        let mut stats = EvalStats::default();
        let mut forced: Vec<(usize, NodeId)> = forced.into_iter().collect();
        forced.sort_unstable();
        let qplan = plan::cost::plan_query(self, &forced, self.options.planner);
        let reach: Vec<ReachRel> = (0..pq.path_vars.len())
            .map(|p| plan::reachability_planned(self, p, &qplan.atoms[p], &mut stats))
            .collect();

        let step_bound =
            if self.counters().is_empty() { None } else { Some(self.step_bound(config)) };
        let mut found = false;
        let mut error: Option<QueryError> = None;
        let order = Some(qplan.order.as_slice());
        plan::enumerate_candidates(self, &forced, &reach, order, config, &mut stats, |sigma| {
            let problem = SearchProblem {
                plan: self,
                sigma: sigma.to_vec(),
                pinned: pinned.clone(),
                want_witness: false,
                step_bound,
                max_states: config.max_search_states,
            };
            match engine.run(&problem) {
                Ok(out) => {
                    if out.accepted {
                        found = true;
                        false
                    } else {
                        true
                    }
                }
                Err(e) => {
                    error = Some(e);
                    false
                }
            }
        })?;
        if let Some(e) = error {
            return Err(e);
        }
        Ok(found)
    }

    /// Runs the query in node mode and reports the plan next to what it
    /// actually cost: the chosen join order, per-atom BFS direction and pin,
    /// estimated *and* measured reachability cardinalities, and the run's
    /// evaluation statistics. The extra reachability pass is the price of
    /// the `actual_pairs` column; `explain` is a diagnostic surface, not a
    /// fast path.
    pub fn explain(&self, config: &EvalConfig) -> Result<crate::eval::ExplainReport, QueryError> {
        let pq = self.pq;
        let mut stats = EvalStats::default();
        let qplan = plan::cost::plan_query(self, self.constants(), self.options.planner);
        let reach: Vec<ReachRel> = (0..pq.path_vars.len())
            .map(|p| plan::reachability_planned(self, p, &qplan.atoms[p], &mut stats))
            .collect();
        let actual_pairs: Vec<u64> =
            reach.iter().map(|r| r.fwd.iter().map(|row| row.len() as u64).sum()).collect();
        let (answers, run_stats) = self.run_mode(config, Mode::Nodes, Engine::Dense)?;
        let atoms = (0..pq.path_vars.len())
            .map(|p| crate::eval::ExplainAtom {
                path_var: pq.path_vars[p].clone(),
                from_var: pq.node_vars[pq.path_from[p]].clone(),
                to_var: pq.node_vars[pq.path_to[p]].clone(),
                direction: qplan.atoms[p].dir,
                pinned: qplan.atoms[p].pin.map(|c| match self.graph.node_name(c) {
                    Some(name) => name.to_string(),
                    None => format!("#{}", c.0),
                }),
                automaton_states: pq.unary[p].as_ref().map_or(0, |u| u.nfa.num_states()),
                est_pairs: qplan.atoms[p].est_pairs,
                est_fwd_frontier: qplan.atoms[p].est_fwd_frontier,
                est_rev_frontier: qplan.atoms[p].est_rev_frontier,
                actual_pairs: actual_pairs[p],
            })
            .collect();
        Ok(crate::eval::ExplainReport {
            planner: self.options.planner,
            join_order: qplan.order.iter().map(|&v| pq.node_vars[v].clone()).collect(),
            atoms,
            stats: run_stats,
            answers: answers.len() as u64,
        })
    }
}

/// A prepared query bound to a graph, with both held by shared ownership:
/// the self-contained (`'static`, `Send + Sync`) form of [`BoundPlan`].
///
/// Where [`PreparedQuery::bind`] borrows the query and the graph — right for
/// one-shot evaluation — a `BoundStatement` owns `Arc` handles to both plus
/// the bind artifacts, so it can be cached (e.g. in a server's
/// prepared-statement registry keyed by `(statement, graph)`) and executed
/// concurrently from many threads. [`plan`](Self::plan) yields a view-only
/// [`BoundPlan`] without copying any bind artifact.
#[derive(Debug)]
pub struct BoundStatement {
    pq: Arc<PreparedQuery>,
    graph: Arc<GraphDb>,
    art: BindArtifacts,
    /// Default execution options; [`plan_with`](Self::plan_with) overrides
    /// them per run.
    options: EvalOptions,
}

impl BoundStatement {
    /// Binds `pq` to `graph`, keeping shared handles to both. Exactly
    /// [`PreparedQuery::bind`] otherwise: no automaton compilation, cost
    /// linear in the graph size.
    pub fn bind(pq: Arc<PreparedQuery>, graph: Arc<GraphDb>) -> Result<BoundStatement, QueryError> {
        Self::bind_with(pq, graph, EvalOptions::default())
    }

    /// [`bind`](Self::bind) with explicit default execution options.
    pub fn bind_with(
        pq: Arc<PreparedQuery>,
        graph: Arc<GraphDb>,
        options: EvalOptions,
    ) -> Result<BoundStatement, QueryError> {
        let art = pq.bind_artifacts(&graph)?;
        Ok(BoundStatement { pq, graph, art, options })
    }

    /// Reassembles a statement from artifacts decoded out of a snapshot
    /// sidecar — the persistence layer's constructor. The caller
    /// (`crate::persist`) has already validated the artifacts against the
    /// graph, so no rebind happens here.
    pub(crate) fn from_parts(
        pq: Arc<PreparedQuery>,
        graph: Arc<GraphDb>,
        art: BindArtifacts,
        options: EvalOptions,
    ) -> BoundStatement {
        BoundStatement { pq, graph, art, options }
    }

    /// The cached bind artifacts (read by the persistence layer).
    pub(crate) fn artifacts(&self) -> &BindArtifacts {
        &self.art
    }

    /// The prepared query this statement binds.
    pub fn prepared(&self) -> &Arc<PreparedQuery> {
        &self.pq
    }

    /// The graph this statement is bound to.
    pub fn graph(&self) -> &Arc<GraphDb> {
        &self.graph
    }

    /// A borrowed [`BoundPlan`] over the cached bind artifacts (no copying;
    /// all `run*`/`check` entry points hang off the returned plan).
    pub fn plan(&self) -> BoundPlan<'_> {
        self.plan_with(self.options)
    }

    /// A borrowed [`BoundPlan`] running with `options` instead of the
    /// statement's defaults — how a server applies a per-request thread
    /// count to a cached statement without rebinding it.
    pub fn plan_with(&self, options: EvalOptions) -> BoundPlan<'_> {
        BoundPlan { pq: &self.pq, graph: &self.graph, art: Cow::Borrowed(&self.art), options }
    }

    /// Convenience for [`BoundPlan::run`].
    pub fn run(&self, config: &EvalConfig) -> Result<(Vec<Answer>, EvalStats), QueryError> {
        self.plan().run(config)
    }

    /// Convenience for [`BoundPlan::run_nodes`].
    pub fn run_nodes(
        &self,
        config: &EvalConfig,
    ) -> Result<(Vec<Vec<NodeId>>, EvalStats), QueryError> {
        self.plan().run_nodes(config)
    }

    /// Convenience for [`BoundPlan::run_boolean`].
    pub fn run_boolean(&self, config: &EvalConfig) -> Result<(bool, EvalStats), QueryError> {
        self.plan().run_boolean(config)
    }

    /// Convenience for [`BoundPlan::check`].
    pub fn check(
        &self,
        nodes: &[NodeId],
        paths: &[Path],
        config: &EvalConfig,
    ) -> Result<bool, QueryError> {
        self.plan().check(nodes, paths, config)
    }
}

/// Compile-time guarantee behind the frontier-parallel engine: everything a
/// search worker reads — the compiled simulation tables, the per-query code
/// indexes, and the bound plan itself — is shareable across the scoped
/// threads by reference. The tables are written once (behind
/// `Arc`/`OnceLock`) and only ever read afterwards; if mutable or
/// thread-local state sneaks into any of these types, this stops compiling
/// before a data race can exist.
const _: fn() = || {
    fn assert_sync_send<T: Sync + Send>() {}
    #[allow(clippy::extra_unused_lifetimes)] // 'a is used, but only in the body
    fn assert_for_any_lifetime<'a>() {
        assert_sync_send::<BoundPlan<'a>>();
        assert_sync_send::<&'a RelSim>();
    }
    let _ = assert_for_any_lifetime;
    assert_sync_send::<RelSim>();
    assert_sync_send::<CompactNfa<TupleSym>>();
    assert_sync_send::<CompactNfa<Symbol>>();
    assert_sync_send::<CodeMap>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use ecrpq_automata::builtin;
    use ecrpq_graph::generators;

    fn same_length_query(al: &Alphabet) -> Ecrpq {
        Ecrpq::builder(al)
            .head_nodes(&["x", "y"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .language("p1", "a+")
            .language("p2", "a+")
            .relation(builtin::equal_length(al), &["p1", "p2"])
            .build()
            .unwrap()
    }

    #[test]
    fn prepare_once_run_many_reuses_compiled_automata() {
        let g1 = generators::cycle_graph(4, "a");
        let g2 = generators::cycle_graph(5, "a");
        let al = g1.alphabet().clone();
        let q = same_length_query(&al);
        let cfg = EvalConfig::default();

        let pq = PreparedQuery::prepare(&q).unwrap();
        let (a1, s1) = pq.bind(&g1).unwrap().run_nodes(&cfg).unwrap();
        assert!(!a1.is_empty());
        assert!(s1.sim_cache_misses > 0, "first run must compile: {s1:?}");

        // Re-running on a fresh graph skips automaton compilation entirely.
        let (a2, s2) = pq.bind(&g2).unwrap().run_nodes(&cfg).unwrap();
        assert!(!a2.is_empty());
        assert_eq!(s2.sim_cache_misses, 0, "reuse must not recompile: {s2:?}");
        assert!(s2.sim_cache_hits > 0, "reuse must hit the caches: {s2:?}");
    }

    #[test]
    fn warm_compiles_everything_once() {
        let al = Alphabet::from_labels(["a"]);
        let q = same_length_query(&al);
        let pq = PreparedQuery::prepare(&q).unwrap();
        let (h0, m0) = pq.warm();
        assert!(m0 > 0, "cold warm() must compile something");
        let (h1, m1) = pq.warm();
        assert_eq!(m1, 0, "second warm() must be all hits");
        assert_eq!(h1, h0 + m0);
    }

    #[test]
    fn traced_run_records_phase_spans_and_matches_untraced() {
        let g = generators::cycle_graph(6, "a");
        let al = g.alphabet().clone();
        let q = same_length_query(&al);
        let cfg = EvalConfig::default();
        let pq = PreparedQuery::prepare(&q).unwrap();
        let plan = pq.bind(&g).unwrap();
        let (plain, _) = plan.run_nodes(&cfg).unwrap();

        let mut trace = Trace::new();
        let (traced, stats) = plan.run_nodes_traced(&cfg, &mut trace).unwrap();
        let mut plain = plain;
        let mut traced = traced;
        plain.sort();
        traced.sort();
        assert_eq!(plain, traced, "tracing must not change answers");

        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"plan"), "spans: {names:?}");
        assert!(names.contains(&"reach:p1"), "spans: {names:?}");
        assert!(names.contains(&"reach:p2"), "spans: {names:?}");
        assert!(names.contains(&"search"), "spans: {names:?}");
        // Spans are monotonically ordered and all closed.
        for w in trace.spans.windows(2) {
            assert!(w[1].start_ns >= w[0].start_ns);
        }
        assert!(trace.spans.iter().all(|s| s.dur_ns > 0));
        // The search span carries the run's counters as attributes.
        let search = trace.spans.iter().find(|s| s.name == "search").unwrap();
        let attr = |k: &str| search.attrs.iter().find(|(a, _)| a == k).map(|(_, v)| *v);
        assert_eq!(attr("candidates"), Some(stats.candidates));
        assert_eq!(attr("verified"), Some(stats.verified));
    }

    #[test]
    fn prepared_agrees_with_one_shot_eval() {
        let g = generators::random_graph(18, 2.0, &["a", "b"], 5);
        let al = g.alphabet().clone();
        let q = same_length_query(&al);
        let cfg = EvalConfig::default();
        let mut oneshot = crate::eval::eval_nodes(&q, &g, &cfg).unwrap();
        let pq = PreparedQuery::prepare(&q).unwrap();
        let (mut prepared, _) = pq.bind(&g).unwrap().run_nodes(&cfg).unwrap();
        oneshot.sort();
        prepared.sort();
        assert_eq!(oneshot, prepared);
    }

    #[test]
    fn bind_resolves_constants_per_graph() {
        let mut g1 = GraphDb::empty();
        let a1 = g1.add_named_node("start");
        let b1 = g1.add_named_node("end");
        g1.add_edge_labeled(a1, "a", b1);
        let al = g1.alphabet().clone();
        let q = Ecrpq::builder(&al)
            .head_nodes(&["y"])
            .atom("x", "p", "y")
            .language("p", "a")
            .bind_node("x", "start")
            .build()
            .unwrap();
        let pq = PreparedQuery::prepare(&q).unwrap();
        let cfg = EvalConfig::default();
        let (ans, _) = pq.bind(&g1).unwrap().run_nodes(&cfg).unwrap();
        assert_eq!(ans, vec![vec![b1]]);
        // A graph without the named node fails at bind time.
        let g2 = generators::cycle_graph(3, "a");
        assert!(matches!(pq.bind(&g2), Err(QueryError::UnknownGraphNode(_))));
    }

    #[test]
    fn bound_statement_matches_borrowed_bind_and_shares_across_threads() {
        let g = Arc::new(generators::random_graph(18, 2.0, &["a", "b"], 5));
        let al = g.alphabet().clone();
        let q = same_length_query(&al);
        let cfg = EvalConfig::default();
        let pq = Arc::new(PreparedQuery::prepare(&q).unwrap());

        let mut borrowed = pq.bind(&g).unwrap().run_nodes(&cfg).unwrap().0;
        borrowed.sort();

        let stmt = Arc::new(BoundStatement::bind(Arc::clone(&pq), Arc::clone(&g)).unwrap());
        // Warm once so the threads below only report cache hits.
        let (mut owned, _) = stmt.run_nodes(&cfg).unwrap();
        owned.sort();
        assert_eq!(borrowed, owned);

        // The same cached statement evaluates concurrently from many threads
        // with identical answers and zero recompilation.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let stmt = Arc::clone(&stmt);
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let (mut ans, stats) = stmt.run_nodes(&cfg).unwrap();
                    ans.sort();
                    (ans, stats)
                })
            })
            .collect();
        for h in handles {
            let (ans, stats) = h.join().unwrap();
            assert_eq!(ans, borrowed);
            assert_eq!(stats.sim_cache_misses, 0, "cached statement must not recompile");
        }
    }

    #[test]
    fn foreign_graph_labels_do_not_confuse_relations() {
        // Query alphabet {a}; the graph additionally has label `z`, which no
        // relation can read — paths through `z` edges must not satisfy the
        // equality relation, and unconstrained reachability must still work.
        let mut g = GraphDb::empty();
        let n0 = g.add_named_node("n0");
        let n1 = g.add_named_node("n1");
        let n2 = g.add_named_node("n2");
        g.add_edge_labeled(n0, "a", n1);
        g.add_edge_labeled(n1, "a", n2);
        g.add_edge_labeled(n0, "z", n1); // foreign label
        let al = Alphabet::from_labels(["a"]);
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .relation(builtin::equality(&al), &["p1", "p2"])
            .build()
            .unwrap();
        let cfg = EvalConfig::default();
        let pq = PreparedQuery::prepare(&q).unwrap();
        let (mut ans, _) = pq.bind(&g).unwrap().run_nodes(&cfg).unwrap();
        ans.sort();
        // aa split as a|a: (n0, n2) with midpoint n1; plus all the
        // empty-path answers (x = z = y).
        assert!(ans.contains(&vec![n0, n2]));
        // The z edge alone can never appear in an equality witness, because
        // `eq` does not read the foreign letter; but the unconstrained
        // relational part still sees it, so no panic / miscode may occur.
        let (refr, _) = crate::eval::reference::eval_nodes_with_stats(&q, &g, &cfg).unwrap();
        let mut refr = refr;
        refr.sort();
        assert_eq!(ans, refr);
    }
}
