//! Representing (possibly infinite) sets of output paths.
//!
//! Proposition 5.2 of the paper: for a fixed ECRPQ `Q` with head
//! `Ans(z̄, χ̄)`, a graph `G`, and a tuple of nodes `v̄`, one can construct in
//! polynomial time an automaton that accepts exactly the representations of
//! all tuples of paths `ρ̄` with `(v̄, ρ̄) ∈ Q(G)`. We build that automaton
//! over the encoding alphabet `V^k ∪ (Σ⊥)^k`: an accepted word alternates
//! node tuples and convolution letters,
//! `v̄0 ā1 v̄1 ā2 … āp v̄p`, and uniquely determines (and is determined by) the
//! tuple of paths.
//!
//! The construction explores exactly the states of the convolution search of
//! [`super::search`], so it stays polynomial in the size of the graph for a
//! fixed query (Theorem 6.1), and exponential only in the query.

use crate::error::QueryError;
use crate::eval::dense::{odometer_next, Layout, ShardedArena};
use crate::eval::plan;
use crate::eval::prepared::{BoundPlan, PreparedQuery, RelSim};
use crate::eval::EvalConfig;
use crate::query::Ecrpq;
use ecrpq_automata::alphabet::{Symbol, TupleSym};
use ecrpq_automata::nfa::{Nfa, StateId};
use ecrpq_automata::sim::StateSet;
use ecrpq_graph::{GraphDb, NodeId, Path};
use std::collections::{HashMap, VecDeque};

/// A letter of the path-tuple encoding alphabet `V^k ∪ (Σ⊥)^k`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EncLetter {
    /// A tuple of current nodes, one per output path variable.
    Nodes(Vec<NodeId>),
    /// A convolution letter over the output path variables.
    Letter(TupleSym),
}

/// The answer automaton of Proposition 5.2 for a query, a graph, and a tuple
/// of head-node values.
#[derive(Clone, Debug)]
pub struct AnswerAutomaton {
    /// The automaton over the encoding alphabet.
    pub nfa: Nfa<EncLetter>,
    /// Number of output path variables `k`.
    pub arity: usize,
}

impl AnswerAutomaton {
    /// Tests whether a tuple of paths is represented by the automaton (i.e.
    /// whether `(v̄, ρ̄) ∈ Q(G)` for the `v̄` the automaton was built for).
    pub fn contains(&self, paths: &[Path]) -> bool {
        assert_eq!(paths.len(), self.arity);
        self.nfa.accepts(&encode_paths(paths))
    }

    /// True if the query has no path answers for the given nodes.
    pub fn is_empty(&self) -> bool {
        self.nfa.is_empty()
    }

    /// Number of automaton states (reported by the benchmark harness).
    pub fn num_states(&self) -> usize {
        self.nfa.num_states()
    }
}

/// Encodes a tuple of paths as a word over the encoding alphabet:
/// `v̄0 ā1 v̄1 … āp v̄p`, where finished paths repeat their final node and
/// contribute `⊥` letters.
pub fn encode_paths(paths: &[Path]) -> Vec<EncLetter> {
    let max_len = paths.iter().map(|p| p.len()).max().unwrap_or(0);
    let node_at = |p: &Path, i: usize| -> NodeId {
        if i >= p.nodes().len() {
            p.end()
        } else {
            p.nodes()[i]
        }
    };
    let mut word = Vec::with_capacity(2 * max_len + 1);
    word.push(EncLetter::Nodes(paths.iter().map(|p| node_at(p, 0)).collect()));
    for i in 0..max_len {
        let letter: Vec<Option<Symbol>> = paths.iter().map(|p| p.label().get(i).copied()).collect();
        word.push(EncLetter::Letter(TupleSym::new(letter)));
        word.push(EncLetter::Nodes(paths.iter().map(|p| node_at(p, i + 1)).collect()));
    }
    word
}

/// Builds the answer automaton `A^{(G,v̄)}_Q` for the head path variables of
/// `query`, with the head node variables bound to `nodes`.
///
/// The automaton accepts exactly the encodings of tuples `ρ̄` such that
/// `(nodes, ρ̄) ∈ Q(G)`.
pub fn answer_automaton(
    query: &Ecrpq,
    graph: &GraphDb,
    nodes: &[NodeId],
    config: &EvalConfig,
) -> Result<AnswerAutomaton, QueryError> {
    let prepared = PreparedQuery::prepare(query)?;
    prepared.bind(graph)?.answer_automaton(nodes, config)
}

impl BoundPlan<'_> {
    /// Builds the answer automaton of Proposition 5.2 for this plan's head
    /// path variables with the head node variables bound to `nodes`
    /// (prepared-pipeline counterpart of [`answer_automaton`]).
    pub fn answer_automaton(
        &self,
        nodes: &[NodeId],
        config: &EvalConfig,
    ) -> Result<AnswerAutomaton, QueryError> {
        let pq = self.pq;
        if nodes.len() != pq.head_node_idx.len() {
            return Err(QueryError::Unsupported(format!(
                "expected {} head node values, got {}",
                pq.head_node_idx.len(),
                nodes.len()
            )));
        }
        if !self.counters().is_empty() {
            return Err(QueryError::Unsupported(
                "answer automata are not defined for queries with linear constraints".to_string(),
            ));
        }
        let arity = pq.head_path_idx.len();

        // Build one product automaton per Q-compatible candidate assignment σ
        // that extends the given head nodes, and take their union. The states
        // are the convolution-search states; transitions alternate Letter and
        // Nodes.
        let mut nfa: Nfa<EncLetter> = Nfa::new();
        let mut stats = plan::EvalStats::default();
        if pq.dense_search {
            pq.force_rel_sims(&mut stats);
        }

        // Enumerate candidates via the same machinery as the evaluator, with
        // the head node variables joining the constants.
        let mut constants = self.constants().to_vec();
        for (i, &vi) in pq.head_node_idx.iter().enumerate() {
            constants.push((vi, nodes[i]));
        }
        let reach: Vec<plan::ReachRel> =
            (0..pq.path_vars.len()).map(|p| plan::reachability(self, p, &mut stats)).collect();

        let mut err: Option<QueryError> = None;
        plan::enumerate_candidates(self, &constants, &reach, None, config, &mut stats, |sigma| {
            if let Err(e) = add_candidate_automaton(&mut nfa, self, sigma, arity, config) {
                err = Some(e);
                return false;
            }
            true
        })?;
        if let Some(e) = err {
            return Err(e);
        }
        Ok(AnswerAutomaton { nfa: nfa.trim(), arity })
    }
}

// The construction explores the same product states as the convolution
// search, using the same dense encoding: a state is one flat row of `u64`
// words — one position word per path variable (`node << 1 | done`) followed
// by the bitset blocks of every relation automaton's state set — interned
// into the sharded arena of [`super::dense`]. Each interned state owns a
// pair of automaton states ("before nodes" / "after nodes"); the frontier
// and the pair table are indexed by the `u32` arena ids.
//
// Like the convolution search, the construction is level-synchronous when
// the plan's `EvalOptions` ask for threads: a level's states are expanded by
// scoped workers against the frozen arena (lock-free reads), and the
// coordinator merges the discovered transitions in chunk order between
// levels — so the constructed automaton (state numbering, transitions,
// accepting flags) is bit-identical at every thread count.

/// Per-variable expansion options plus the scratch of [`apply_move`]: the
/// answer-automaton counterpart of the search's expander, shared by the
/// inline path and every parallel worker. Successors are always emitted in
/// odometer order.
struct AnswersExpander<'a, 'p> {
    plan: &'a BoundPlan<'p>,
    sigma: &'a [NodeId],
    layout: &'a Layout,
    sims: &'a [&'a RelSim],
    options: Vec<Vec<Option<(Symbol, NodeId)>>>,
    choice: Vec<usize>,
    letters: Vec<Option<Symbol>>,
    head_letters: Vec<Option<Symbol>>,
    next: Vec<u64>,
    rel_scratch: Vec<StateSet>,
}

impl<'a, 'p> AnswersExpander<'a, 'p> {
    fn new(
        plan: &'a BoundPlan<'p>,
        sigma: &'a [NodeId],
        layout: &'a Layout,
        sims: &'a [&'a RelSim],
    ) -> Self {
        let num_paths = layout.num_paths;
        AnswersExpander {
            plan,
            sigma,
            layout,
            sims,
            options: vec![Vec::new(); num_paths],
            choice: vec![0usize; num_paths],
            letters: vec![None; num_paths],
            head_letters: vec![None; plan.pq.head_path_idx.len()],
            next: vec![0u64; layout.words],
            rel_scratch: sims.iter().map(|rs| StateSet::empty(rs.sim.blocks())).collect(),
        }
    }

    /// Emits every admissible global successor of `cur` in odometer order:
    /// `emit(next_key, head_letters)` receives the successor key and the
    /// convolution letter projected onto the head path variables.
    fn expand(&mut self, cur: &[u64], mut emit: impl FnMut(&[u64], &[Option<Symbol>])) {
        let plan = self.plan;
        let pq = plan.pq;
        let graph = plan.graph;
        let num_paths = self.layout.num_paths;

        for (p, &w) in cur.iter().enumerate().take(num_paths) {
            let opts = &mut self.options[p];
            opts.clear();
            let node = NodeId((w >> 1) as u32);
            let done = w & 1 == 1;
            if done {
                opts.push(None);
            } else {
                for &(label, to) in graph.out_edges(node) {
                    opts.push(Some((label, to)));
                }
                if node == self.sigma[pq.path_to[p]] {
                    opts.push(None); // finish here
                }
            }
            if opts.is_empty() {
                return; // dead: this variable can neither move nor finish
            }
        }
        self.choice.fill(0);
        loop {
            let any_real = (0..num_paths).any(|p| self.options[p][self.choice[p]].is_some());
            if any_real
                && apply_move(
                    plan,
                    self.sims,
                    &self.layout.rel_off,
                    &self.layout.rel_blocks,
                    cur,
                    &self.options,
                    &self.choice,
                    &mut self.letters,
                    &mut self.rel_scratch,
                    &mut self.next,
                )
            {
                for (h, &p) in self.head_letters.iter_mut().zip(&pq.head_path_idx) {
                    *h = self.options[p][self.choice[p]].map(|(l, _)| plan.translate(l));
                }
                emit(&self.next, &self.head_letters);
            }
            if !odometer_next(&mut self.choice, |i| self.options[i].len()) {
                return;
            }
        }
    }
}

/// One worker's transitions from its chunk of a level, in expansion order:
/// per source state a group of `(successor key, head letter)` candidates.
/// Unlike the search, *every* admissible move is recorded — transitions to
/// already-known states matter here.
struct TransBuf {
    words: usize,
    arity: usize,
    keys: Vec<u64>,
    letters: Vec<Option<Symbol>>,
    groups: Vec<(u32, u32)>,
}

impl TransBuf {
    fn new(words: usize, arity: usize) -> TransBuf {
        TransBuf { words, arity, keys: Vec::new(), letters: Vec::new(), groups: Vec::new() }
    }

    fn begin_group(&mut self, src: u32) {
        self.groups.push((src, 0));
    }

    fn push(&mut self, key: &[u64], head_letters: &[Option<Symbol>]) {
        self.keys.extend_from_slice(key);
        self.letters.extend_from_slice(head_letters);
        self.groups.last_mut().expect("push after begin_group").1 += 1;
    }

    fn key(&self, idx: usize) -> &[u64] {
        &self.keys[idx * self.words..(idx + 1) * self.words]
    }

    fn letter(&self, idx: usize) -> &[Option<Symbol>] {
        &self.letters[idx * self.arity..(idx + 1) * self.arity]
    }
}

fn add_candidate_automaton(
    nfa: &mut Nfa<EncLetter>,
    plan: &BoundPlan<'_>,
    sigma: &[NodeId],
    arity: usize,
    config: &EvalConfig,
) -> Result<(), QueryError> {
    let pq = plan.pq;
    if !pq.dense_search {
        // Oversized relation automata: fall back to the classical
        // cloned-state construction (see the note on
        // `PreparedQuery::dense_search`). Always sequential.
        return add_candidate_automaton_classic(nfa, plan, sigma, arity, config);
    }
    // Check repeated-atom endpoint consistency.
    for &(p, f, t) in &pq.extra_endpoints {
        if sigma[f] != sigma[pq.path_from[p]] || sigma[t] != sigma[pq.path_to[p]] {
            return Ok(());
        }
    }
    let num_paths = pq.path_vars.len();
    let head = &pq.head_path_idx;
    let sims: Vec<&RelSim> = pq.relations.iter().map(|r| r.sim(pq.code_base)).collect();

    // Same word layout as the convolution search, without counters.
    let layout = Layout::new(num_paths, &sims, 0);
    let words = layout.words;
    let threads = plan.options().effective_threads();
    let min_level = plan.options().min_parallel_level.max(1);

    let accepts_key = |key: &[u64]| -> bool {
        (0..num_paths)
            .all(|p| key[p] & 1 == 1 || NodeId((key[p] >> 1) as u32) == sigma[pq.path_to[p]])
            && sims.iter().enumerate().all(|(j, rs)| {
                rs.sim.any_accepting_blocks(
                    &key[layout.rel_off[j]..layout.rel_off[j] + layout.rel_blocks[j]],
                )
            })
    };

    let mut arena = ShardedArena::new(words);
    // Per arena id: the (before-nodes, after-nodes) automaton state pair.
    let mut pairs: Vec<(StateId, StateId)> = Vec::new();
    let mut next_level: Vec<u32> = Vec::new();

    // Intern helper: creates the before/after pair for a fresh state, linked
    // by the Nodes letter of the head path variables, and enqueues it on the
    // next level. Only ever called by the coordinator (inline expansion or
    // the between-level merge), so ids stay in canonical discovery order.
    let intern = |key: &[u64],
                  nfa: &mut Nfa<EncLetter>,
                  arena: &mut ShardedArena,
                  pairs: &mut Vec<(StateId, StateId)>,
                  next_level: &mut Vec<u32>|
     -> (StateId, StateId) {
        let (id, fresh) = arena.intern(key);
        if !fresh {
            return pairs[id as usize];
        }
        let b = nfa.add_state();
        let a = nfa.add_state();
        let node_letter =
            EncLetter::Nodes(head.iter().map(|&p| NodeId((key[p] >> 1) as u32)).collect());
        nfa.add_transition(b, node_letter, a);
        nfa.set_accepting(a, accepts_key(key));
        pairs.push((b, a));
        next_level.push(id);
        (b, a)
    };

    // Encode the initial state.
    let mut initial = vec![0u64; words];
    for p in 0..num_paths {
        initial[p] = (sigma[pq.path_from[p]].0 as u64) << 1;
    }
    for (j, rs) in sims.iter().enumerate() {
        initial[layout.rel_off[j]..layout.rel_off[j] + layout.rel_blocks[j]]
            .copy_from_slice(rs.sim.initial_set().as_blocks());
    }
    let (b0, _a0) = intern(&initial, nfa, &mut arena, &mut pairs, &mut next_level);
    nfa.add_initial(b0);

    let mut level: Vec<u32> = Vec::new();
    std::mem::swap(&mut level, &mut next_level);
    let mut inline_expander = AnswersExpander::new(plan, sigma, &layout, &sims);
    let mut cur = vec![0u64; words];
    let mut visited_budget = config.max_search_states;
    let budget_error = || QueryError::BudgetExceeded {
        what: "answer-automaton construction exceeded the state budget".to_string(),
    };

    while !level.is_empty() {
        next_level.clear();
        if threads <= 1 || level.len() < min_level {
            // Small frontier: expand inline, adding transitions as they are
            // discovered — the sequential construction restricted to this
            // level.
            for &id in &level {
                if visited_budget == 0 {
                    return Err(budget_error());
                }
                visited_budget -= 1;
                let from_after = pairs[id as usize].1;
                cur.copy_from_slice(arena.get(id));
                inline_expander.expand(&cur, |next, head_letters| {
                    let letter = EncLetter::Letter(TupleSym::new(head_letters.to_vec()));
                    let (nb, _na) = intern(next, nfa, &mut arena, &mut pairs, &mut next_level);
                    nfa.add_transition(from_after, letter, nb);
                });
            }
        } else {
            // The whole level counts against the budget up front: the
            // sequential construction would have run out mid-level anyway,
            // and an error discards the automaton either way.
            if visited_budget < level.len() {
                return Err(budget_error());
            }
            visited_budget -= level.len();
            // Shared fan-out with the convolution search (same chunking
            // heuristic, coordinator takes the first chunk), in bounded
            // rounds so the buffered transitions stay proportional to one
            // round's fan-out, not the whole level's.
            for round in level.chunks(crate::eval::dense::PARALLEL_ROUND_CAP) {
                let bufs = {
                    let arena = &arena;
                    let layout = &layout;
                    let sims = &sims;
                    crate::eval::dense::expand_level_chunks(
                        round,
                        threads,
                        min_level.div_ceil(2),
                        || TransBuf::new(words, arity),
                        |ids, buf| {
                            let mut expander = AnswersExpander::new(plan, sigma, layout, sims);
                            for &id in ids {
                                buf.begin_group(id);
                                expander.expand(arena.get(id), |next, head_letters| {
                                    buf.push(next, head_letters);
                                });
                            }
                        },
                    )
                };
                // Deterministic merge: chunks in level order, groups in
                // state order, transitions in odometer order.
                for buf in &bufs {
                    let mut idx = 0;
                    for &(src, count) in &buf.groups {
                        let from_after = pairs[src as usize].1;
                        for _ in 0..count {
                            let letter = EncLetter::Letter(TupleSym::new(buf.letter(idx).to_vec()));
                            let (nb, _na) =
                                intern(buf.key(idx), nfa, &mut arena, &mut pairs, &mut next_level);
                            nfa.add_transition(from_after, letter, nb);
                            idx += 1;
                        }
                    }
                }
            }
        }
        std::mem::swap(&mut level, &mut next_level);
    }
    Ok(())
}

/// Applies the global move selected by `choice` to the encoded state `cur`,
/// writing the successor into `next`. Returns `false` if some relation
/// automaton has no matching transition.
#[allow(clippy::too_many_arguments)]
fn apply_move(
    plan: &BoundPlan<'_>,
    sims: &[&RelSim],
    rel_off: &[usize],
    rel_blocks: &[usize],
    cur: &[u64],
    options: &[Vec<Option<(Symbol, NodeId)>>],
    choice: &[usize],
    letters: &mut [Option<Symbol>],
    rel_scratch: &mut [StateSet],
    next: &mut [u64],
) -> bool {
    let num_paths = options.len();
    for p in 0..num_paths {
        match options[p][choice[p]] {
            Some((label, to)) => {
                next[p] = (to.0 as u64) << 1;
                letters[p] = Some(plan.translate(label));
            }
            None => {
                next[p] = cur[p] | 1; // keep the node, set the done flag
                letters[p] = None;
            }
        }
    }
    plan::advance_relations(plan.pq, sims, rel_off, rel_blocks, letters, cur, rel_scratch, next)
}

// ---------------------------------------------------------------------------
// Classical fallback (oversized relation automata)
// ---------------------------------------------------------------------------

/// Search state used by the classical answer-automaton construction: current
/// node per path variable plus a "finished" flag, and the relation state
/// sets as sorted vectors.
#[derive(Clone, PartialEq, Eq, Hash)]
struct AState {
    pos: Vec<(NodeId, bool)>,
    rel: Vec<Vec<StateId>>,
}

/// The classical cloned-state construction, retained for queries whose
/// relation automata exceed the dense-table size bound: sparse sorted-vector
/// state sets stepped through [`Nfa::step`] scale with the reachable
/// frontier instead of the automaton size.
fn add_candidate_automaton_classic(
    nfa: &mut Nfa<EncLetter>,
    plan: &BoundPlan<'_>,
    sigma: &[NodeId],
    _arity: usize,
    config: &EvalConfig,
) -> Result<(), QueryError> {
    let pq = plan.pq;
    let graph = plan.graph;
    // Check repeated-atom endpoint consistency.
    for &(p, f, t) in &pq.extra_endpoints {
        if sigma[f] != sigma[pq.path_from[p]] || sigma[t] != sigma[pq.path_to[p]] {
            return Ok(());
        }
    }
    let num_paths = pq.path_vars.len();
    let head = &pq.head_path_idx;

    let initial = AState {
        pos: (0..num_paths).map(|p| (sigma[pq.path_from[p]], false)).collect(),
        rel: pq.relations.iter().map(|r| r.nfa.epsilon_closure(r.nfa.initial())).collect(),
    };

    // Each search state becomes *two* automaton states: one expecting the
    // next Nodes letter ("before nodes") and one expecting the next
    // convolution letter ("after nodes").
    let mut before_ids: HashMap<AState, StateId> = HashMap::new();
    let mut after_ids: HashMap<AState, StateId> = HashMap::new();
    let mut queue: VecDeque<AState> = VecDeque::new();

    let accepts = |s: &AState| -> bool {
        s.pos.iter().enumerate().all(|(p, &(node, done))| done || node == sigma[pq.path_to[p]])
            && pq
                .relations
                .iter()
                .enumerate()
                .all(|(j, r)| s.rel[j].iter().any(|&q| r.nfa.is_accepting(q)))
    };

    fn intern(
        s: &AState,
        nfa: &mut Nfa<EncLetter>,
        before: &mut HashMap<AState, StateId>,
        after: &mut HashMap<AState, StateId>,
        queue: &mut VecDeque<AState>,
        head: &[usize],
        accepting: bool,
    ) -> (StateId, StateId) {
        if let (Some(&b), Some(&a)) = (before.get(s), after.get(s)) {
            return (b, a);
        }
        let b = nfa.add_state();
        let a = nfa.add_state();
        let node_letter = EncLetter::Nodes(head.iter().map(|&p| s.pos[p].0).collect());
        nfa.add_transition(b, node_letter, a);
        nfa.set_accepting(a, accepting);
        before.insert(s.clone(), b);
        after.insert(s.clone(), a);
        queue.push_back(s.clone());
        (b, a)
    }

    let (b0, _a0) =
        intern(&initial, nfa, &mut before_ids, &mut after_ids, &mut queue, head, accepts(&initial));
    nfa.add_initial(b0);

    let mut visited_budget = config.max_search_states;
    while let Some(state) = queue.pop_front() {
        if visited_budget == 0 {
            return Err(QueryError::BudgetExceeded {
                what: "answer-automaton construction exceeded the state budget".to_string(),
            });
        }
        visited_budget -= 1;
        let from_after = after_ids[&state];
        let mut options: Vec<Vec<Option<(Symbol, NodeId)>>> = Vec::with_capacity(num_paths);
        let mut dead = false;
        for p in 0..num_paths {
            let (node, done) = state.pos[p];
            let mut opts: Vec<Option<(Symbol, NodeId)>> = Vec::new();
            if done {
                opts.push(None);
            } else {
                for &(label, to) in graph.out_edges(node) {
                    opts.push(Some((label, to)));
                }
                if node == sigma[pq.path_to[p]] {
                    opts.push(None); // finish here
                }
            }
            if opts.is_empty() {
                dead = true;
                break;
            }
            options.push(opts);
        }
        if dead {
            continue;
        }
        let mut choice = vec![0usize; num_paths];
        'outer: loop {
            let picks: Vec<Option<(Symbol, NodeId)>> =
                (0..num_paths).map(|p| options[p][choice[p]]).collect();
            if picks.iter().any(|o| o.is_some()) {
                if let Some(next) = apply_move_classic(plan, &state, &picks) {
                    let letter = EncLetter::Letter(TupleSym::new(
                        head.iter().map(|&p| picks[p].map(|(l, _)| plan.translate(l))).collect(),
                    ));
                    let acc = accepts(&next);
                    let (nb, _na) =
                        intern(&next, nfa, &mut before_ids, &mut after_ids, &mut queue, head, acc);
                    nfa.add_transition(from_after, letter, nb);
                }
            }
            let mut i = 0;
            loop {
                if i == num_paths {
                    break 'outer;
                }
                choice[i] += 1;
                if choice[i] < options[i].len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
        }
    }
    Ok(())
}

fn apply_move_classic(
    plan: &BoundPlan<'_>,
    state: &AState,
    picks: &[Option<(Symbol, NodeId)>],
) -> Option<AState> {
    let mut pos = Vec::with_capacity(picks.len());
    let mut letters: Vec<Option<Symbol>> = Vec::with_capacity(picks.len());
    for (p, pick) in picks.iter().enumerate() {
        match pick {
            Some((label, to)) => {
                pos.push((*to, false));
                letters.push(Some(plan.translate(*label)));
            }
            None => {
                pos.push((state.pos[p].0, true));
                letters.push(None);
            }
        }
    }
    let mut rel = Vec::with_capacity(plan.pq.relations.len());
    for (j, r) in plan.pq.relations.iter().enumerate() {
        let tuple: Vec<Option<Symbol>> = r.tapes.iter().map(|&t| letters[t]).collect();
        if tuple.iter().all(|c| c.is_none()) {
            rel.push(state.rel[j].clone());
            continue;
        }
        let next = r.nfa.step(&state.rel[j], &TupleSym::new(tuple));
        if next.is_empty() {
            return None;
        }
        rel.push(next);
    }
    Some(AState { pos, rel })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use ecrpq_automata::builtin;
    use ecrpq_graph::generators;

    #[test]
    fn answer_automaton_represents_exactly_the_answer_paths() {
        // Graph: a cycle of length 3 labeled a; query: Ans(x, π) ← (x, π, y), a+(π)
        // with x bound to node 0 — answers are all paths of positive length from 0.
        let g = generators::cycle_graph(3, "a");
        let al = g.alphabet().clone();
        let q = crate::query::Ecrpq::builder(&al)
            .head_nodes(&["x"])
            .head_paths(&["p"])
            .atom("x", "p", "y")
            .language("p", "a+")
            .build()
            .unwrap();
        let n0 = ecrpq_graph::NodeId(0);
        let aut = answer_automaton(&q, &g, &[n0], &EvalConfig::default()).unwrap();
        assert!(!aut.is_empty());
        // Path of length 3 (full cycle) is an answer; the empty path is not (a+).
        let a = g.alphabet().sym("a");
        let full_cycle = Path::new(
            vec![
                ecrpq_graph::NodeId(0),
                ecrpq_graph::NodeId(1),
                ecrpq_graph::NodeId(2),
                ecrpq_graph::NodeId(0),
            ],
            vec![a, a, a],
        );
        assert!(aut.contains(&[full_cycle]));
        let empty = Path::empty(n0);
        assert!(!aut.contains(&[empty]));
        // A path that does not start at the bound node is rejected.
        let wrong_start = Path::new(vec![ecrpq_graph::NodeId(1), ecrpq_graph::NodeId(2)], vec![a]);
        assert!(!aut.contains(&[wrong_start]));
    }

    #[test]
    fn answer_automaton_agrees_with_eval_with_paths() {
        let g = generators::cycle_graph(4, "a");
        let al = g.alphabet().clone();
        let q = crate::query::Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .head_paths(&["p1", "p2"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .relation(builtin::equal_length(&al), &["p1", "p2"])
            .build()
            .unwrap();
        let cfg = EvalConfig { answer_limit: 20, ..EvalConfig::default() };
        let answers = eval::eval_with_paths(&q, &g, &cfg).unwrap();
        assert!(!answers.is_empty());
        for ans in answers.iter().take(5) {
            let aut = answer_automaton(&q, &g, &ans.nodes, &cfg).unwrap();
            assert!(
                aut.contains(&ans.paths),
                "witness paths must be accepted by the answer automaton"
            );
        }
    }

    #[test]
    fn encoding_round_trip_shape() {
        let g = generators::cycle_graph(3, "a");
        let a = g.alphabet().sym("a");
        let p1 = Path::new(vec![ecrpq_graph::NodeId(0), ecrpq_graph::NodeId(1)], vec![a]);
        let p2 = Path::new(
            vec![ecrpq_graph::NodeId(1), ecrpq_graph::NodeId(2), ecrpq_graph::NodeId(0)],
            vec![a, a],
        );
        let enc = encode_paths(&[p1, p2]);
        // v̄0 ā1 v̄1 ā2 v̄2 — five letters for max length 2
        assert_eq!(enc.len(), 5);
        assert!(matches!(enc[0], EncLetter::Nodes(_)));
        assert!(matches!(enc[1], EncLetter::Letter(_)));
        if let EncLetter::Letter(t) = &enc[3] {
            // first path finished: ⊥ on tape 0
            assert_eq!(t.get(0), None);
            assert_eq!(t.get(1), Some(a));
        } else {
            panic!("expected a convolution letter");
        }
    }
}
