//! Query containment (Section 7).
//!
//! Containment `Q ⊑ Q'` asks whether `Q(G) ⊆ Q'(G)` for *every* graph
//! database `G`. The paper shows the problem is undecidable for ECRPQs
//! (Theorem 7.1) and EXPSPACE-complete when the right-hand query is a CRPQ
//! (Theorem 7.2). Both results rest on the canonical-database
//! characterization (Claim 7.2.1): `Q ⊄ Q'` iff some graph that is
//! *canonical* for `Q` — a disjoint union of simple paths, one per relational
//! atom, whose labels jointly satisfy `Q`'s relation atoms — fails `Q'` on
//! the tuple `Q` trivially selects on it.
//!
//! The checker below searches canonical databases whose paths have length at
//! most a caller-supplied bound. It is therefore:
//!
//! * **sound for non-containment** — any counterexample it returns is a real
//!   counterexample, and is reported together with the witness graph; and
//! * **complete up to the bound** — if no counterexample exists with paths of
//!   length ≤ bound, the result is [`ContainmentResult::ContainedUpTo`]. When
//!   every language and relation in `Q` is finite and the bound covers their
//!   longest members, this is full containment.
//!
//! A bounded procedure is the honest choice here: by Theorem 7.1 no complete
//! procedure exists, and by Freydenberger & Schweikardt the same holds even
//! for CRPQ ⊑ ECRPQ.

use crate::error::QueryError;
use crate::eval::{self, EvalConfig};
use crate::query::Ecrpq;
use ecrpq_automata::alphabet::Symbol;
use ecrpq_graph::{GraphDb, NodeId, Path};
use std::collections::HashMap;

/// The result of a bounded containment check.
#[derive(Clone, Debug)]
pub enum ContainmentResult {
    /// A counterexample was found: a canonical graph of `Q` on which some
    /// answer of `Q` is not an answer of `Q'`.
    NotContained {
        /// The witness graph (boxed: it is much larger than the other variant).
        witness: Box<GraphDb>,
        /// The head-node tuple of `Q` that `Q'` misses.
        nodes: Vec<NodeId>,
        /// The head-path tuple of `Q` that `Q'` misses.
        paths: Vec<Path>,
    },
    /// No counterexample exists among canonical databases whose per-atom
    /// paths have length at most the bound.
    ContainedUpTo {
        /// The path-length bound that was exhausted.
        bound: usize,
        /// Number of canonical databases examined.
        canonical_databases: usize,
    },
}

impl ContainmentResult {
    /// True if a counterexample was found.
    pub fn is_counterexample(&self) -> bool {
        matches!(self, ContainmentResult::NotContained { .. })
    }
}

/// Checks `Q ⊑ Q'` over canonical databases of `Q` with per-atom path labels
/// of length at most `bound`. Both queries must share the head signature
/// (same number of head node and head path variables).
pub fn check_containment(
    q: &Ecrpq,
    q_prime: &Ecrpq,
    bound: usize,
    config: &EvalConfig,
) -> Result<ContainmentResult, QueryError> {
    q.validate()?;
    q_prime.validate()?;
    if q.head_nodes.len() != q_prime.head_nodes.len()
        || q.head_paths.len() != q_prime.head_paths.len()
    {
        return Err(QueryError::Unsupported(
            "containment requires both queries to have the same head signature".to_string(),
        ));
    }
    if !q.linear_constraints.is_empty() || !q_prime.linear_constraints.is_empty() {
        return Err(QueryError::Unsupported(
            "containment checking does not support linear constraints".to_string(),
        ));
    }

    let mut examined = 0usize;
    // Enumerate label tuples for Q's path variables that satisfy all of Q's
    // relation atoms, up to the bound, and materialize each as a canonical
    // graph.
    let label_choices = enumerate_satisfying_labelings(q, bound, config)?;
    for labeling in label_choices {
        examined += 1;
        let (graph, node_map, path_map) = canonical_graph(q, &labeling);
        // The tuple Q selects on its canonical database.
        let nodes: Vec<NodeId> = q.head_nodes.iter().map(|v| node_map[v.name()]).collect();
        let paths: Vec<Path> = q.head_paths.iter().map(|p| path_map[p.name()].clone()).collect();
        // Sanity: Q must indeed select this tuple (it does by construction,
        // but the check also guards against bound-induced truncation).
        if !eval::check(q, &graph, &nodes, &paths, config)? {
            continue;
        }
        if !eval::check(q_prime, &graph, &nodes, &paths, config)? {
            return Ok(ContainmentResult::NotContained { witness: Box::new(graph), nodes, paths });
        }
    }
    Ok(ContainmentResult::ContainedUpTo { bound, canonical_databases: examined })
}

/// Enumerates assignments of label words (length ≤ bound) to Q's path
/// variables such that every relation atom of Q is satisfied.
fn enumerate_satisfying_labelings(
    q: &Ecrpq,
    bound: usize,
    config: &EvalConfig,
) -> Result<Vec<HashMap<String, Vec<Symbol>>>, QueryError> {
    let path_vars: Vec<String> = q.path_vars().into_iter().map(|p| p.0).collect();
    // Candidate words per path variable: all words over the query alphabet up
    // to the bound that satisfy the variable's unary constraints.
    let mut per_var: Vec<Vec<Vec<Symbol>>> = Vec::new();
    for pv in &path_vars {
        // Intersect unary constraints (arity-1 relations on this variable).
        let mut lang: Option<ecrpq_automata::Nfa<Symbol>> = None;
        for r in &q.relations {
            if r.relation.arity() == 1 && r.paths[0].name() == pv {
                let proj = r.relation.project(0);
                lang = Some(match lang {
                    None => proj.as_ref().clone(),
                    Some(l) => l.intersect(&proj).trim(),
                });
            }
        }
        let words = match lang {
            Some(l) => l.enumerate_words(bound, config.answer_limit.max(256)),
            None => all_words(&q.alphabet, bound),
        };
        if words.is_empty() {
            return Ok(Vec::new());
        }
        per_var.push(words);
    }
    // Cartesian product, filtered by the relation atoms of arity ≥ 2.
    let mut out = Vec::new();
    let mut choice = vec![0usize; path_vars.len()];
    if path_vars.is_empty() {
        return Ok(out);
    }
    'outer: loop {
        let labeling: HashMap<String, Vec<Symbol>> = path_vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), per_var[i][choice[i]].clone()))
            .collect();
        let ok = q.relations.iter().all(|r| {
            if r.relation.arity() < 2 {
                return true;
            }
            let words: Vec<&[Symbol]> =
                r.paths.iter().map(|p| labeling[p.name()].as_slice()).collect();
            r.relation.contains(&words)
        });
        if ok {
            out.push(labeling);
            if out.len() > config.max_candidates {
                return Err(QueryError::BudgetExceeded {
                    what: "containment canonical-database enumeration".to_string(),
                });
            }
        }
        let mut i = 0;
        loop {
            if i == path_vars.len() {
                break 'outer;
            }
            choice[i] += 1;
            if choice[i] < per_var[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
    Ok(out)
}

/// All words over the alphabet with length at most `bound`.
fn all_words(alphabet: &ecrpq_automata::Alphabet, bound: usize) -> Vec<Vec<Symbol>> {
    let mut out = vec![Vec::new()];
    let mut frontier = vec![Vec::new()];
    for _ in 0..bound {
        let mut next = Vec::new();
        for w in &frontier {
            for s in alphabet.symbols() {
                let mut w2: Vec<Symbol> = w.clone();
                w2.push(s);
                out.push(w2.clone());
                next.push(w2);
            }
        }
        frontier = next;
    }
    out
}

/// Builds the canonical graph of `q` for a labeling of its path variables:
/// one simple path per relational atom, node-disjoint except for shared
/// endpoint variables.
fn canonical_graph(
    q: &Ecrpq,
    labeling: &HashMap<String, Vec<Symbol>>,
) -> (GraphDb, HashMap<String, NodeId>, HashMap<String, Path>) {
    let mut graph = GraphDb::new(q.alphabet.clone());
    let mut node_map: HashMap<String, NodeId> = HashMap::new();
    let mut path_map: HashMap<String, Path> = HashMap::new();
    for (i, atom) in q.atoms.iter().enumerate() {
        let word = &labeling[atom.path.name()];
        let from = *node_map
            .entry(atom.from.name().to_string())
            .or_insert_with(|| graph.add_named_node(atom.from.name()));
        let to = *node_map
            .entry(atom.to.name().to_string())
            .or_insert_with(|| graph.add_named_node(atom.to.name()));
        // Build the simple path; for an empty word the endpoints must coincide,
        // which we model by reusing `from` as `to`'s value only when they are
        // the same variable — otherwise the canonical database for this
        // labeling simply identifies the two variables through an empty path,
        // which requires from == to; we skip such degenerate labelings unless
        // the variables already share a node.
        if word.is_empty() {
            if from != to {
                // identify the nodes by adding an ε-like self identification:
                // an empty path forces σ(x) = σ(y); emulate by mapping the
                // `to` variable onto `from`'s node.
                node_map.insert(atom.to.name().to_string(), from);
            }
            let anchor = node_map[atom.from.name()];
            path_map.insert(atom.path.name().to_string(), Path::empty(anchor));
            continue;
        }
        let mut nodes = vec![from];
        for j in 0..word.len() - 1 {
            nodes.push(graph.add_named_node(&format!("atom{i}_mid{j}")));
        }
        nodes.push(node_map[atom.to.name()]);
        let _ = to;
        for (j, &sym) in word.iter().enumerate() {
            graph.add_edge(nodes[j], sym, nodes[j + 1]);
        }
        path_map.insert(atom.path.name().to_string(), Path::new(nodes, word.clone()));
    }
    (graph, node_map, path_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Ecrpq;
    use ecrpq_automata::{builtin, Alphabet};

    fn cfg() -> EvalConfig {
        EvalConfig::default()
    }

    #[test]
    fn contained_language_refinement() {
        // Q: path labeled a·b between x and y; Q': path labeled (a|b)* — contained.
        let al = Alphabet::from_labels(["a", "b"]);
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p", "y")
            .language("p", "a b")
            .build()
            .unwrap();
        let qp = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p", "y")
            .language("p", "(a|b)*")
            .build()
            .unwrap();
        let r = check_containment(&q, &qp, 4, &cfg()).unwrap();
        assert!(!r.is_counterexample());
        // and the converse direction fails with a witness
        let r2 = check_containment(&qp, &q, 3, &cfg()).unwrap();
        match r2 {
            ContainmentResult::NotContained { witness, nodes, paths } => {
                assert!(!eval::check(&q, &witness, &nodes, &paths, &cfg()).unwrap());
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn ecrpq_contained_in_crpq_relaxation() {
        // Q: (x,π1,z),(z,π2,y) with π1 = π2 and both in a+;
        // Q': same shape without the equality — Q ⊑ Q'.
        let al = Alphabet::from_labels(["a", "b"]);
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .language("p1", "a+")
            .language("p2", "a+")
            .relation(builtin::equality(&al), &["p1", "p2"])
            .build()
            .unwrap();
        let qp = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .language("p1", "a+")
            .language("p2", "a+")
            .build()
            .unwrap();
        let r = check_containment(&q, &qp, 3, &cfg()).unwrap();
        assert!(!r.is_counterexample());
        // The converse fails: Q' allows different lengths.
        let r2 = check_containment(&qp, &q, 3, &cfg()).unwrap();
        assert!(r2.is_counterexample());
    }

    #[test]
    fn mismatched_heads_are_rejected() {
        let al = Alphabet::from_labels(["a"]);
        let q = Ecrpq::builder(&al).head_nodes(&["x"]).atom("x", "p", "y").build().unwrap();
        let qp = Ecrpq::builder(&al).head_nodes(&["x", "y"]).atom("x", "p", "y").build().unwrap();
        assert!(check_containment(&q, &qp, 2, &cfg()).is_err());
    }
}
