//! Error types for query construction and evaluation.

use std::fmt;

/// Errors raised while building, validating, or evaluating queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A head variable does not occur in the body.
    UnboundHeadVariable(String),
    /// A path variable used in a relation atom does not occur in any
    /// relational atom.
    UnboundPathVariable(String),
    /// A relation atom's arity differs from the number of path variables it
    /// is applied to.
    RelationArityMismatch {
        /// Name of the relation (if any).
        relation: String,
        /// Declared arity of the relation.
        arity: usize,
        /// Number of path variables supplied.
        supplied: usize,
    },
    /// The query has no relational atoms (the paper requires `m > 0`).
    NoRelationalAtoms,
    /// A regular expression failed to parse or compile.
    Regex(String),
    /// A named node in the query is not present in the graph being queried.
    UnknownGraphNode(String),
    /// The evaluation exceeded its configured budget.
    BudgetExceeded {
        /// Human-readable description of which budget was exhausted.
        what: String,
    },
    /// A feature was requested that the engine does not support for the given
    /// query (e.g. the length abstraction of a relation with no declared
    /// abstraction).
    Unsupported(String),
    /// A linear-constraint specification is malformed.
    InvalidLinearConstraint(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnboundHeadVariable(v) => {
                write!(f, "head variable `{v}` does not occur in the query body")
            }
            QueryError::UnboundPathVariable(v) => {
                write!(f, "path variable `{v}` is not bound by any relational atom")
            }
            QueryError::RelationArityMismatch { relation, arity, supplied } => write!(
                f,
                "relation `{relation}` has arity {arity} but was applied to {supplied} path variables"
            ),
            QueryError::NoRelationalAtoms => {
                write!(f, "a query must contain at least one relational atom (x, π, y)")
            }
            QueryError::Regex(e) => write!(f, "regular expression error: {e}"),
            QueryError::UnknownGraphNode(n) => {
                write!(f, "the graph has no node named `{n}`")
            }
            QueryError::BudgetExceeded { what } => {
                write!(f, "evaluation budget exceeded: {what}")
            }
            QueryError::Unsupported(what) => write!(f, "unsupported: {what}"),
            QueryError::InvalidLinearConstraint(what) => {
                write!(f, "invalid linear constraint: {what}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ecrpq_automata::regex::RegexError> for QueryError {
    fn from(e: ecrpq_automata::regex::RegexError) -> Self {
        QueryError::Regex(e.to_string())
    }
}
