//! Expressiveness tools (Proposition 3.2 and the pattern-matching application
//! of Section 4).
//!
//! * [`strings_of_crpq`] implements the construction in the proof of
//!   Proposition 3.2: for a CRPQ `Q` with head `Ans(x, y)`, the set
//!   `strings(Q) = { s | (v0, v|s|) ∈ Q(G_s) }` of strings on whose string
//!   graph `Q` connects the endpoints is regular, and an NFA for it can be
//!   built from `Q`. Combined with the pumping lemma this is how the paper
//!   separates ECRPQs from CRPQs (the ECRPQ answering `a^m b^m` has a
//!   non-regular strings set).
//! * [`pattern_to_ecrpq`] compiles a *pattern* — a word over `Σ ∪ V` with
//!   repeated variables, e.g. `aXbX` — into an ECRPQ that finds node pairs
//!   connected by a path whose label belongs to the pattern language, exactly
//!   as described in Section 4.

use crate::error::QueryError;
use crate::query::Ecrpq;
use ecrpq_automata::alphabet::{Alphabet, Symbol};
use ecrpq_automata::builtin;
use ecrpq_automata::nfa::Nfa;
use ecrpq_graph::generators::string_graph;
use ecrpq_graph::GraphDb;

/// One element of a pattern: a terminal letter of Σ or a variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternItem {
    /// A terminal edge label.
    Terminal(String),
    /// A pattern variable; equal variables must be substituted by equal words.
    Variable(String),
}

/// Parses a compact pattern string: lowercase letters (and digits) are
/// terminals, uppercase letters are variables. Example: `"aXbX"`.
pub fn parse_pattern(pattern: &str) -> Vec<PatternItem> {
    pattern
        .chars()
        .map(|c| {
            if c.is_ascii_uppercase() {
                PatternItem::Variable(c.to_string())
            } else {
                PatternItem::Terminal(c.to_string())
            }
        })
        .collect()
}

/// Compiles a pattern into an ECRPQ `Q_α(x, y)` finding node pairs connected
/// by a path whose label is in the pattern language `L_Σ(α)` (Section 4).
pub fn pattern_to_ecrpq(pattern: &[PatternItem], alphabet: &Alphabet) -> Result<Ecrpq, QueryError> {
    if pattern.is_empty() {
        return Err(QueryError::Unsupported("empty patterns are not supported".to_string()));
    }
    let mut builder = Ecrpq::builder(alphabet).head_nodes(&["x0", &format!("x{}", pattern.len())]);
    // Relational chain (x0, π1, x1), …, (x_{n-1}, π_n, x_n).
    for i in 0..pattern.len() {
        let from = format!("x{i}");
        let to = format!("x{}", i + 1);
        let path = format!("pi{}", i + 1);
        builder = builder.atom(&from, &path, &to);
    }
    // Per-item constraints.
    let mut first_occurrence: std::collections::HashMap<&str, usize> =
        std::collections::HashMap::new();
    for (i, item) in pattern.iter().enumerate() {
        let path = format!("pi{}", i + 1);
        match item {
            PatternItem::Terminal(t) => {
                builder = builder.language(&path, t);
            }
            PatternItem::Variable(v) => {
                match first_occurrence.get(v.as_str()) {
                    None => {
                        first_occurrence.insert(v, i);
                        // unconstrained: any word in Σ*
                        builder = builder.language(&path, ".*");
                    }
                    Some(&j) => {
                        let other = format!("pi{}", j + 1);
                        builder = builder.relation(builtin::equality(alphabet), &[&other, &path]);
                    }
                }
            }
        }
    }
    builder.build()
}

/// The construction from the proof of Proposition 3.2: an NFA accepting
/// `strings(Q)` for a CRPQ `Q` whose head is `Ans(x, y)` with `x` the source
/// and `y` the target of the string graph.
///
/// The implementation takes a semantic route that is equivalent for CRPQs and
/// reuses the evaluator: the returned value is a closure-backed *oracle*
/// together with a helper that checks membership of concrete strings by
/// evaluating `Q` over the string graph `G_s`. For the regularity statement
/// itself, [`strings_nfa_for_single_atom`] builds the NFA explicitly for the
/// common single-atom case `Ans(x, y) ← (x, π, y), L(π)` (where
/// `strings(Q) = L`), which the tests cross-check against the oracle.
pub struct StringsOracle<'a> {
    query: &'a Ecrpq,
    config: crate::eval::EvalConfig,
}

impl<'a> StringsOracle<'a> {
    /// Creates the oracle. The query must have exactly two head node
    /// variables and no head path variables.
    pub fn new(query: &'a Ecrpq) -> Result<Self, QueryError> {
        if query.head_nodes.len() != 2 || !query.head_paths.is_empty() {
            return Err(QueryError::Unsupported(
                "strings(Q) is defined for queries with head Ans(x, y)".to_string(),
            ));
        }
        Ok(StringsOracle { query, config: crate::eval::EvalConfig::default() })
    }

    /// Does the string (given as a sequence of labels) belong to `strings(Q)`?
    pub fn contains(&self, word: &[&str]) -> Result<bool, QueryError> {
        if word.is_empty() {
            return Err(QueryError::Unsupported(
                "strings(Q) is defined for non-empty strings (Σ+)".to_string(),
            ));
        }
        let (graph, first, last) = string_graph(word);
        let answers = crate::eval::eval_nodes(self.query, &graph, &self.config)?;
        Ok(answers.contains(&vec![first, last]))
    }

    /// Evaluates the query over an arbitrary graph (convenience passthrough).
    pub fn eval(&self, graph: &GraphDb) -> Result<Vec<Vec<ecrpq_graph::NodeId>>, QueryError> {
        crate::eval::eval_nodes(self.query, graph, &self.config)
    }
}

/// Explicit `strings(Q)` NFA for single-atom CRPQs
/// `Ans(x, y) ← (x, π, y), L1(π), …, Lt(π)`: the intersection of the `Li`.
pub fn strings_nfa_for_single_atom(query: &Ecrpq) -> Result<Nfa<Symbol>, QueryError> {
    if query.atoms.len() != 1 || !query.is_crpq() {
        return Err(QueryError::Unsupported(
            "strings_nfa_for_single_atom requires a single-atom CRPQ".to_string(),
        ));
    }
    let mut lang: Option<Nfa<Symbol>> = None;
    for r in &query.relations {
        let proj = r.relation.project(0);
        lang = Some(match lang {
            None => proj.as_ref().clone(),
            Some(l) => l.intersect(&proj).trim(),
        });
    }
    Ok(lang.unwrap_or_else(|| {
        // unconstrained: Σ*
        let mut nfa = Nfa::new();
        let q = nfa.add_state();
        nfa.add_initial(q);
        nfa.set_accepting(q, true);
        for s in query.alphabet.symbols() {
            nfa.add_transition(q, s, q);
        }
        nfa
    }))
}

/// The separating ECRPQ of Proposition 3.2: `Ans(x, y)` holds iff `x` and `y`
/// are connected by a path labeled `a^m b^m` for some `m > 0`. Its
/// `strings(Q)` set is not regular, which is how the paper proves that no
/// CRPQ is equivalent to it.
pub fn anbn_query(alphabet: &Alphabet) -> Result<Ecrpq, QueryError> {
    Ecrpq::builder(alphabet)
        .head_nodes(&["x", "y"])
        .atom("x", "p1", "z")
        .atom("z", "p2", "y")
        .language("p1", "a+")
        .language("p2", "b+")
        .relation(builtin::equal_length(alphabet), &["p1", "p2"])
        .build()
}

/// The `a^n b^n c^n` ECRPQ from Section 4 (a language that is not even
/// context-free, let alone expressible by patterns).
pub fn anbncn_query(alphabet: &Alphabet) -> Result<Ecrpq, QueryError> {
    Ecrpq::builder(alphabet)
        .head_nodes(&["x", "y"])
        .atom("x", "p1", "z1")
        .atom("z1", "p2", "z2")
        .atom("z2", "p3", "y")
        .language("p1", "a*")
        .language("p2", "b*")
        .language("p3", "c*")
        .relation(builtin::equal_length(alphabet), &["p1", "p2"])
        .relation(builtin::equal_length(alphabet), &["p2", "p3"])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecrpq_automata::Alphabet;

    #[test]
    fn anbn_oracle_accepts_exactly_anbn() {
        let al = Alphabet::from_labels(["a", "b"]);
        let q = anbn_query(&al).unwrap();
        let oracle = StringsOracle::new(&q).unwrap();
        assert!(oracle.contains(&["a", "b"]).unwrap());
        assert!(oracle.contains(&["a", "a", "b", "b"]).unwrap());
        assert!(!oracle.contains(&["a", "a", "b"]).unwrap());
        assert!(!oracle.contains(&["b", "a"]).unwrap());
        assert!(!oracle.contains(&["a"]).unwrap());
    }

    #[test]
    fn anbncn_oracle() {
        let al = Alphabet::from_labels(["a", "b", "c"]);
        let q = anbncn_query(&al).unwrap();
        let oracle = StringsOracle::new(&q).unwrap();
        assert!(oracle.contains(&["a", "b", "c"]).unwrap());
        assert!(oracle.contains(&["a", "a", "b", "b", "c", "c"]).unwrap());
        assert!(!oracle.contains(&["a", "b", "b", "c"]).unwrap());
        assert!(!oracle.contains(&["a", "b", "c", "c"]).unwrap());
    }

    #[test]
    fn pattern_compilation_squares() {
        // Pattern XX: squared strings w·w.
        let al = Alphabet::from_labels(["a", "b"]);
        let pattern = parse_pattern("XX");
        let q = pattern_to_ecrpq(&pattern, &al).unwrap();
        let oracle = StringsOracle::new(&q).unwrap();
        assert!(oracle.contains(&["a", "b", "a", "b"]).unwrap());
        assert!(oracle.contains(&["a", "a"]).unwrap());
        assert!(!oracle.contains(&["a", "b", "b", "a"]).unwrap());
        assert!(!oracle.contains(&["a", "b", "a"]).unwrap());
    }

    #[test]
    fn pattern_compilation_axbx() {
        // Pattern aXbX from the introduction: strings a·w·b·w.
        let al = Alphabet::from_labels(["a", "b"]);
        let pattern = parse_pattern("aXbX");
        let q = pattern_to_ecrpq(&pattern, &al).unwrap();
        let oracle = StringsOracle::new(&q).unwrap();
        assert!(oracle.contains(&["a", "a", "b", "a"]).unwrap());
        assert!(oracle.contains(&["a", "a", "b", "b", "a", "b"]).unwrap()); // X = ab
        assert!(!oracle.contains(&["a", "a", "b", "b"]).unwrap());
        assert!(!oracle.contains(&["b", "a", "b", "a"]).unwrap());
    }

    #[test]
    fn single_atom_strings_nfa_matches_oracle() {
        let al = Alphabet::from_labels(["a", "b"]);
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p", "y")
            .language("p", "a (a|b)* b")
            .build()
            .unwrap();
        let nfa = strings_nfa_for_single_atom(&q).unwrap();
        let oracle = StringsOracle::new(&q).unwrap();
        let words: Vec<Vec<&str>> = vec![
            vec!["a", "b"],
            vec!["a", "a", "b"],
            vec!["a", "b", "a"],
            vec!["b", "a"],
            vec!["a"],
        ];
        for w in words {
            let syms: Vec<Symbol> = w.iter().map(|l| al.sym(l)).collect();
            assert_eq!(nfa.accepts(&syms), oracle.contains(&w).unwrap(), "disagreement on {w:?}");
        }
    }

    #[test]
    fn parse_pattern_shapes() {
        let p = parse_pattern("aXbY");
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], PatternItem::Terminal("a".to_string()));
        assert_eq!(p[1], PatternItem::Variable("X".to_string()));
        assert!(pattern_to_ecrpq(&[], &Alphabet::from_labels(["a"])).is_err());
    }
}
