//! Compiled-artifact sidecars: warm prepared statements across restarts.
//!
//! A graph snapshot (see `ecrpq_graph::snapshot`) restores the data in
//! milliseconds, but a freshly reopened server would still pay the full
//! statement cost on first use: NFA compilation, dense simulation-table
//! construction, and graph binding. The *sidecar* file written next to a
//! snapshot (`<path>.art`, magic `ECRPQART`) closes that gap. For every
//! prepared statement bound to the saved graph it persists:
//!
//! - the statement name, text, and an FNV-1a 64 hash of the text (the key —
//!   a loader re-parses the text and refuses an entry whose hash disagrees),
//! - every compiled [`CompactNfa`] simulation table the statement could
//!   touch at run time: relation convolution tables, per-tape projection
//!   tables, and forward *and reverse* unary tables ([`warm_full`] forces
//!   the reverse tables before writing, because the planner may pick a
//!   reverse BFS on its very first run),
//! - the statement's [`BindArtifacts`] — the label-translated CSR adjacency
//!   and resolved constants/counters binding produces.
//!
//! Loading re-prepares the statement from its text (cheap — parsing and
//! plan numbering, no table compilation), seeds every memoized `OnceLock`
//! cache with the decoded tables, and reassembles the [`BoundStatement`]
//! from the decoded artifacts. The first `run` after a warm open therefore
//! reports `sim_cache_misses: 0`: nothing is compiled, everything is read.
//!
//! The sidecar records the snapshot id of the graph it was written against
//! and every decoded artifact is validated against the reopened graph
//! (shapes, node ids, label ids), so a mismatched or corrupted sidecar is a
//! structured [`StorageError`] — never a panic or an out-of-bounds run.
//!
//! [`warm_full`]: PreparedQuery::warm_full

use crate::eval::prepared::{BindArtifacts, CounterRow};
use crate::eval::{BoundStatement, EvalOptions, PreparedQuery};
use crate::parse::parse_query;
use ecrpq_automata::alphabet::{Alphabet, Symbol};
use ecrpq_automata::persist as sim_codec;
use ecrpq_automata::semilinear::CmpOp;
use ecrpq_graph::graph::{GraphDb, NodeId};
use ecrpq_storage::{fnv1a64, Container, Decoder, Encoder, StorageError, Writer};
use std::sync::Arc;

/// Magic bytes identifying a compiled-artifact sidecar file.
pub const MAGIC: [u8; 8] = *b"ECRPQART";
/// The sidecar format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

const SEC_GRAPH_ID: u32 = 1;
const SEC_STATEMENTS: u32 = 2;

/// The conventional sidecar path for a snapshot at `path`: `<path>.art`.
pub fn sidecar_path(path: &std::path::Path) -> std::path::PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(".art");
    std::path::PathBuf::from(s)
}

/// One statement to persist: its registry name, source text, and the bound
/// statement holding the compiled caches and bind artifacts.
#[derive(Debug)]
pub struct SidecarStatement<'a> {
    /// Registry name of the statement.
    pub name: &'a str,
    /// The statement's source text (re-parsed on load).
    pub text: &'a str,
    /// The statement bound to the graph being saved.
    pub stmt: &'a BoundStatement,
}

/// One statement reassembled from a sidecar, fully warmed.
#[derive(Debug)]
pub struct WarmStatement {
    /// Registry name of the statement.
    pub name: String,
    /// The statement's source text.
    pub text: String,
    /// The statement, bound to the reopened graph with every simulation
    /// cache seeded.
    pub statement: Arc<BoundStatement>,
}

/// Serializes a sidecar for the graph snapshot identified by `graph_id`.
/// Forces full compilation ([`PreparedQuery::warm_full`]) of every statement
/// first, so the file contains everything a run could touch.
pub fn write_sidecar(graph_id: u64, statements: &[SidecarStatement<'_>]) -> Vec<u8> {
    let mut w = Writer::new(MAGIC, FORMAT_VERSION);
    let mut e = Encoder::with_capacity(8);
    e.u64(graph_id);
    w.section(SEC_GRAPH_ID, e);

    let mut e = Encoder::new();
    e.u32(statements.len() as u32);
    for s in statements {
        encode_statement(s, &mut e);
    }
    w.section(SEC_STATEMENTS, e);
    w.finish()
}

/// Parses a sidecar written for the snapshot identified by `graph_id` and
/// reassembles every statement against `graph` (the reopened snapshot). A
/// sidecar recorded against a different snapshot id is rejected.
pub fn read_sidecar(
    bytes: &[u8],
    graph_id: u64,
    graph: &Arc<GraphDb>,
) -> Result<Vec<WarmStatement>, StorageError> {
    let c = Container::open(bytes, MAGIC, FORMAT_VERSION)?;
    let mut d = Decoder::new(c.section(SEC_GRAPH_ID)?);
    let recorded = d.u64("sidecar graph id")?;
    d.finish("graph id")?;
    if recorded != graph_id {
        return Err(StorageError::Corrupt(format!(
            "sidecar was written for snapshot {recorded:#018x}, not {graph_id:#018x}"
        )));
    }
    let mut d = Decoder::new(c.section(SEC_STATEMENTS)?);
    let count = d.u32("statement count")? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        out.push(decode_statement(&mut d, graph)?);
    }
    d.finish("statements")?;
    Ok(out)
}

/// Lists the `(name, text)` entries of a sidecar without reassembling (or
/// validating against a graph) any of them. The save path uses this to
/// report `sidecar_gc`: how many entries of the previous sidecar a rewrite
/// drops because their statement was re-prepared or unregistered since.
/// Tables and artifacts are decoded for framing only and discarded.
pub fn sidecar_entries(bytes: &[u8]) -> Result<Vec<(String, String)>, StorageError> {
    let c = Container::open(bytes, MAGIC, FORMAT_VERSION)?;
    let mut d = Decoder::new(c.section(SEC_GRAPH_ID)?);
    d.u64("sidecar graph id")?;
    d.finish("graph id")?;
    let mut d = Decoder::new(c.section(SEC_STATEMENTS)?);
    let count = d.u32("statement count")? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        out.push(skip_statement(&mut d)?);
    }
    d.finish("statements")?;
    Ok(out)
}

/// Consumes one statement entry structurally, returning its name and text.
fn skip_statement(d: &mut Decoder<'_>) -> Result<(String, String), StorageError> {
    let name = d.str("statement name")?;
    let text = d.str("statement text")?;
    let hash = d.u64("statement text hash")?;
    if fnv1a64(text.as_bytes()) != hash {
        return Err(StorageError::Corrupt(format!(
            "statement `{name}`: text does not match its recorded hash"
        )));
    }
    let num_labels = d.u32("alphabet size")? as usize;
    for _ in 0..num_labels {
        d.str("alphabet label")?;
    }
    let rel_count = d.u32("relation count")? as usize;
    for _ in 0..rel_count {
        if d.u8("relation sim flag")? != 0 {
            sim_codec::decode_tuple_sim(d)?;
        }
        let arity = d.u32("relation arity")? as usize;
        for _ in 0..arity {
            if d.u8("projection sim flag")? != 0 {
                sim_codec::decode_sym_sim(d)?;
            }
        }
    }
    let unary_count = d.u32("unary count")? as usize;
    for _ in 0..unary_count {
        let flags = d.u8("unary flags")?;
        if flags & 0b11 != flags {
            return Err(StorageError::Corrupt(format!(
                "statement `{name}`: unknown unary flag bits {flags:#04x}"
            )));
        }
        if flags & 1 != 0 {
            sim_codec::decode_sym_sim(d)?;
        }
        if flags & 2 != 0 {
            sim_codec::decode_sym_sim(d)?;
        }
    }
    skip_artifacts(d)?;
    Ok((name, text))
}

/// Consumes one [`BindArtifacts`] encoding without shape validation.
fn skip_artifacts(d: &mut Decoder<'_>) -> Result<(), StorageError> {
    d.u64("merged alphabet size")?;
    d.vec_u32("graph symbol map")?;
    let num_constants = d.u32("constant count")? as usize;
    for _ in 0..num_constants {
        d.u32("constant var")?;
        d.u32("constant node")?;
    }
    let num_counters = d.u32("counter count")? as usize;
    for _ in 0..num_counters {
        d.vec_i64("counter length coefficients")?;
        let width = d.u32("counter symbol width")? as usize;
        for _ in 0..width {
            d.vec_i64("counter symbol coefficients")?;
        }
        d.u8("counter op")?;
        d.i64("counter constant")?;
    }
    for what in [
        "forward offsets",
        "forward targets",
        "reverse offsets",
        "reverse sources",
        "forward labels",
        "reverse labels",
    ] {
        d.vec_u32(what)?;
    }
    Ok(())
}

fn encode_statement(s: &SidecarStatement<'_>, e: &mut Encoder) {
    let pq = s.stmt.prepared();
    pq.warm_full();

    e.str(s.name);
    e.str(s.text);
    e.u64(fnv1a64(s.text.as_bytes()));

    // The query alphabet, so the loader re-parses over identical symbols.
    let alphabet = &pq.query().alphabet;
    e.u32(alphabet.len() as u32);
    for (_, label) in alphabet.iter() {
        e.str(label);
    }

    // Relation-level caches: the convolution tables and every per-tape
    // projection that compilation populated.
    e.u32(pq.relations.len() as u32);
    for r in &pq.relations {
        if r.rel.compiled_sim_is_cached() {
            e.u8(1);
            sim_codec::encode_tuple_sim(&r.rel.compiled_sim(), e);
        } else {
            e.u8(0);
        }
        e.u32(r.rel.arity() as u32);
        for tape in 0..r.rel.arity() {
            if r.rel.projection_sim_is_cached(tape) {
                e.u8(1);
                sim_codec::encode_sym_sim(&r.rel.projection_sim(tape), e);
            } else {
                e.u8(0);
            }
        }
    }

    // Query-owned unary caches: forward and reverse tables per path var.
    e.u32(pq.unary.len() as u32);
    for u in &pq.unary {
        let (fwd, rev) = match u {
            Some(u) => (u.sim_cell.get(), u.rev_sim_cell.get()),
            None => (None, None),
        };
        e.u8((fwd.is_some() as u8) | ((rev.is_some() as u8) << 1));
        if let Some(sim) = fwd {
            sim_codec::encode_sym_sim(sim, e);
        }
        if let Some(sim) = rev {
            sim_codec::encode_sym_sim(sim, e);
        }
    }

    encode_artifacts(s.stmt.artifacts(), e);
}

fn decode_statement(
    d: &mut Decoder<'_>,
    graph: &Arc<GraphDb>,
) -> Result<WarmStatement, StorageError> {
    let name = d.str("statement name")?;
    let text = d.str("statement text")?;
    let hash = d.u64("statement text hash")?;
    if fnv1a64(text.as_bytes()) != hash {
        return Err(StorageError::Corrupt(format!(
            "statement `{name}`: text does not match its recorded hash"
        )));
    }

    let num_labels = d.u32("alphabet size")? as usize;
    let mut alphabet = Alphabet::new();
    for _ in 0..num_labels {
        let label = d.str("alphabet label")?;
        alphabet.intern(&label);
    }
    if alphabet.len() != num_labels {
        return Err(StorageError::Corrupt(format!("statement `{name}`: duplicate alphabet label")));
    }

    // Re-prepare from text: parsing and plan numbering only — every table
    // compile below is replaced by seeding a decoded one.
    let query = parse_query(&text, &alphabet)
        .map_err(|e| StorageError::Corrupt(format!("statement `{name}`: {}", e.message)))?;
    let pq = PreparedQuery::prepare(&query)
        .map_err(|e| StorageError::Corrupt(format!("statement `{name}`: {e}")))?;

    let rel_count = d.u32("relation count")? as usize;
    if rel_count != pq.relations.len() {
        return Err(StorageError::Corrupt(format!(
            "statement `{name}`: sidecar has {rel_count} relations, the query compiles to {}",
            pq.relations.len()
        )));
    }
    for r in &pq.relations {
        if d.u8("relation sim flag")? != 0 {
            let sim = sim_codec::decode_tuple_sim(d)?;
            r.rel.seed_compiled_sim(Arc::new(sim));
        }
        let arity = d.u32("relation arity")? as usize;
        if arity != r.rel.arity() {
            return Err(StorageError::Corrupt(format!(
                "statement `{name}`: sidecar relation arity {arity} does not match {}",
                r.rel.arity()
            )));
        }
        for tape in 0..arity {
            if d.u8("projection sim flag")? != 0 {
                let sim = sim_codec::decode_sym_sim(d)?;
                r.rel.seed_projection_sim(tape, Arc::new(sim));
            }
        }
    }

    let unary_count = d.u32("unary count")? as usize;
    if unary_count != pq.unary.len() {
        return Err(StorageError::Corrupt(format!(
            "statement `{name}`: sidecar has {unary_count} unary plans, the query compiles to {}",
            pq.unary.len()
        )));
    }
    for u in &pq.unary {
        let flags = d.u8("unary flags")?;
        if flags & 0b11 != flags {
            return Err(StorageError::Corrupt(format!(
                "statement `{name}`: unknown unary flag bits {flags:#04x}"
            )));
        }
        if flags != 0 && u.is_none() {
            return Err(StorageError::Corrupt(format!(
                "statement `{name}`: sidecar seeds an unconstrained path variable"
            )));
        }
        if flags & 1 != 0 {
            let sim = sim_codec::decode_sym_sim(d)?;
            let _ = u.as_ref().expect("checked above").sim_cell.set(Arc::new(sim));
        }
        if flags & 2 != 0 {
            let sim = sim_codec::decode_sym_sim(d)?;
            let _ = u.as_ref().expect("checked above").rev_sim_cell.set(Arc::new(sim));
        }
    }

    let art = decode_artifacts(d, &name, &pq, graph)?;
    let statement =
        BoundStatement::from_parts(Arc::new(pq), Arc::clone(graph), art, EvalOptions::default());
    Ok(WarmStatement { name, text, statement: Arc::new(statement) })
}

fn encode_artifacts(a: &BindArtifacts, e: &mut Encoder) {
    e.u64(a.merged_len as u64);
    let syms: Vec<u32> = a.graph_symbol_map.iter().map(|s| s.0).collect();
    e.slice_u32(&syms);
    e.u32(a.constants.len() as u32);
    for &(var, node) in &a.constants {
        e.u32(var as u32);
        e.u32(node.0);
    }
    e.u32(a.counters.len() as u32);
    for row in &a.counters {
        e.slice_i64(&row.length_coeff);
        e.u32(row.symbol_coeff.len() as u32);
        for per_sym in &row.symbol_coeff {
            e.slice_i64(per_sym);
        }
        e.u8(match row.op {
            CmpOp::Ge => 0,
            CmpOp::Eq => 1,
            CmpOp::Le => 2,
        });
        e.i64(row.constant);
    }
    for arr in [&a.csr_off, &a.csr_to, &a.rev_off, &a.rev_to] {
        e.slice_u32(arr);
    }
    let csr_label: Vec<u32> = a.csr_label.iter().map(|s| s.0).collect();
    e.slice_u32(&csr_label);
    let rev_label: Vec<u32> = a.rev_label.iter().map(|s| s.0).collect();
    e.slice_u32(&rev_label);
}

fn decode_artifacts(
    d: &mut Decoder<'_>,
    name: &str,
    pq: &PreparedQuery,
    graph: &GraphDb,
) -> Result<BindArtifacts, StorageError> {
    let corrupt =
        |what: &str| StorageError::Corrupt(format!("statement `{name}`: bind artifacts: {what}"));
    let n = graph.num_nodes();
    let m = graph.num_edges();

    let merged_len = d.u64("merged alphabet size")? as usize;
    let graph_symbol_map: Vec<Symbol> =
        d.vec_u32("graph symbol map")?.into_iter().map(Symbol).collect();
    if graph_symbol_map.len() != graph.alphabet().len() {
        return Err(corrupt("symbol map does not match the graph alphabet"));
    }
    if graph_symbol_map.iter().any(|s| s.index() >= merged_len) {
        return Err(corrupt("symbol map exceeds the merged alphabet"));
    }

    let num_constants = d.u32("constant count")? as usize;
    let mut constants = Vec::with_capacity(num_constants.min(1024));
    for _ in 0..num_constants {
        let var = d.u32("constant var")? as usize;
        let node = d.u32("constant node")?;
        if var >= pq.node_vars.len() || node as usize >= n {
            return Err(corrupt("constant out of range"));
        }
        constants.push((var, NodeId(node)));
    }

    let num_counters = d.u32("counter count")? as usize;
    if num_counters != pq.counters.len() {
        return Err(corrupt("counter rows do not match the query"));
    }
    let num_paths = pq.path_vars.len();
    let mut counters = Vec::with_capacity(num_counters);
    for _ in 0..num_counters {
        let length_coeff = d.vec_i64("counter length coefficients")?;
        if length_coeff.len() != num_paths {
            return Err(corrupt("counter row width does not match the path variables"));
        }
        let width = d.u32("counter symbol width")? as usize;
        if width != num_paths {
            return Err(corrupt("counter symbol rows do not match the path variables"));
        }
        let mut symbol_coeff = Vec::with_capacity(width);
        for _ in 0..width {
            let per_sym = d.vec_i64("counter symbol coefficients")?;
            if per_sym.len() > merged_len {
                return Err(corrupt("counter symbol coefficients exceed the merged alphabet"));
            }
            symbol_coeff.push(per_sym);
        }
        let op = match d.u8("counter op")? {
            0 => CmpOp::Ge,
            1 => CmpOp::Eq,
            2 => CmpOp::Le,
            _ => return Err(corrupt("unknown counter comparison")),
        };
        let constant = d.i64("counter constant")?;
        counters.push(CounterRow { length_coeff, symbol_coeff, op, constant });
    }

    let csr_off = d.vec_u32("forward offsets")?;
    let csr_to = d.vec_u32("forward targets")?;
    let rev_off = d.vec_u32("reverse offsets")?;
    let rev_to = d.vec_u32("reverse sources")?;
    let csr_label: Vec<Symbol> = d.vec_u32("forward labels")?.into_iter().map(Symbol).collect();
    let rev_label: Vec<Symbol> = d.vec_u32("reverse labels")?.into_iter().map(Symbol).collect();
    for (off, to, label) in [(&csr_off, &csr_to, &csr_label), (&rev_off, &rev_to, &rev_label)] {
        if off.len() != n + 1 || off[0] != 0 || off[n] as usize != m {
            return Err(corrupt("CSR offsets have the wrong shape"));
        }
        if off.windows(2).any(|w| w[1] < w[0]) {
            return Err(corrupt("CSR offsets are not monotone"));
        }
        if to.len() != m || label.len() != m {
            return Err(corrupt("CSR arrays do not match the edge count"));
        }
        if to.iter().any(|&t| t as usize >= n) {
            return Err(corrupt("CSR target beyond the node count"));
        }
        if label.iter().any(|l| l.index() >= merged_len) {
            return Err(corrupt("CSR label beyond the merged alphabet"));
        }
    }

    Ok(BindArtifacts {
        merged_len,
        graph_symbol_map,
        constants,
        counters,
        csr_off,
        csr_to,
        csr_label,
        rev_off,
        rev_to,
        rev_label,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalConfig;
    use ecrpq_graph::generators;
    use ecrpq_graph::snapshot;

    fn setup(text: &str) -> (Arc<GraphDb>, u64, BoundStatement) {
        let g = generators::random_graph(48, 3.0, &["a", "b"], 5);
        let bytes = snapshot::write_snapshot(&g).unwrap();
        let id = snapshot::snapshot_id(&bytes);
        let graph = Arc::new(snapshot::read_snapshot(&bytes).unwrap());
        let query = parse_query(text, graph.alphabet()).unwrap();
        let pq = Arc::new(PreparedQuery::prepare(&query).unwrap());
        let stmt = BoundStatement::bind(pq, Arc::clone(&graph)).unwrap();
        (graph, id, stmt)
    }

    const QUERIES: &[&str] = &[
        "Ans(x, y) <- (x, p, y), L(p) = a (a | b)*",
        "Ans(x, y) <- (x, p1, z), (z, p2, y), L(p1) = a*, L(p2) = b*, R(p1, p2) = el",
        "Ans(x) <- (x, p, y), L(p) = a a, len(p) <= 2",
    ];

    #[test]
    fn sidecar_roundtrip_warms_every_cache() {
        for text in QUERIES {
            let (graph, id, stmt) = setup(text);
            let entries = [SidecarStatement { name: "q", text, stmt: &stmt }];
            let bytes = write_sidecar(id, &entries);
            let warm = read_sidecar(&bytes, id, &graph).unwrap();
            assert_eq!(warm.len(), 1);
            assert_eq!(warm[0].name, "q");
            // First run on the reassembled statement: zero compilations.
            let config = EvalConfig::default();
            let (answers, stats) = warm[0].statement.run(&config).unwrap();
            assert_eq!(stats.sim_cache_misses, 0, "query `{text}` recompiled");
            let (expected, _) = stmt.run(&config).unwrap();
            assert_eq!(answers, expected, "query `{text}` answers diverged");
        }
    }

    #[test]
    fn sidecar_rejects_wrong_graph_id() {
        let (graph, id, stmt) = setup(QUERIES[0]);
        let entries = [SidecarStatement { name: "q", text: QUERIES[0], stmt: &stmt }];
        let bytes = write_sidecar(id, &entries);
        let err = read_sidecar(&bytes, id ^ 1, &graph).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
        assert!(err.to_string().contains("written for snapshot"));
    }

    #[test]
    fn sidecar_corruption_never_panics() {
        let (graph, id, stmt) = setup(QUERIES[1]);
        let entries = [SidecarStatement { name: "q", text: QUERIES[1], stmt: &stmt }];
        let bytes = write_sidecar(id, &entries);
        for len in (0..bytes.len()).step_by(11) {
            assert!(read_sidecar(&bytes[..len], id, &graph).is_err());
        }
        for i in (0..bytes.len()).step_by(5) {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            assert!(read_sidecar(&flipped, id, &graph).is_err(), "flip at {i} decoded");
        }
    }

    #[test]
    fn artifacts_are_validated_against_the_graph() {
        let (_, id, stmt) = setup(QUERIES[0]);
        let entries = [SidecarStatement { name: "q", text: QUERIES[0], stmt: &stmt }];
        let bytes = write_sidecar(id, &entries);
        // A *different* graph with the same snapshot id must be rejected by
        // the artifact validation (shapes no longer line up).
        let other = Arc::new(generators::cycle_graph(3, "a"));
        assert!(read_sidecar(&bytes, id, &other).is_err());
    }

    #[test]
    fn sidecar_entries_lists_names_without_a_graph() {
        let (graph, id, stmt) = setup(QUERIES[0]);
        let query = parse_query(QUERIES[2], graph.alphabet()).unwrap();
        let pq = Arc::new(PreparedQuery::prepare(&query).unwrap());
        let stmt2 = BoundStatement::bind(pq, Arc::clone(&graph)).unwrap();
        let entries = [
            SidecarStatement { name: "first", text: QUERIES[0], stmt: &stmt },
            SidecarStatement { name: "second", text: QUERIES[2], stmt: &stmt2 },
        ];
        let bytes = write_sidecar(id, &entries);
        let listed = sidecar_entries(&bytes).unwrap();
        assert_eq!(
            listed,
            vec![
                ("first".to_string(), QUERIES[0].to_string()),
                ("second".to_string(), QUERIES[2].to_string()),
            ]
        );
        // Truncations surface as errors, never as a shorter listing.
        for len in (0..bytes.len()).step_by(7) {
            assert!(sidecar_entries(&bytes[..len]).is_err());
        }
    }
}
