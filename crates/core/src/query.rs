//! The query language: conjunctive regular path queries (CRPQs) and their
//! extension with regular relations on tuples of paths (ECRPQs), exactly as
//! defined in Sections 2 and 3 of the paper, plus the linear-constraint
//! extensions of Section 8.2.
//!
//! A query has the form
//!
//! ```text
//! Ans(z̄, χ̄) ← ⋀ (xᵢ, πᵢ, yᵢ), ⋀ Rⱼ(ω̄ⱼ) [, A·ℓ̄ ≥ b]
//! ```
//!
//! where the `(xᵢ, πᵢ, yᵢ)` are *relational atoms* binding path variables to
//! pairs of node variables, the `Rⱼ` are regular relations applied to tuples
//! of path variables (arity-1 relations are ordinary regular languages, i.e.
//! CRPQ atoms), and the optional last clause imposes linear constraints on
//! path lengths or on numbers of label occurrences.

use crate::error::QueryError;
use ecrpq_automata::alphabet::Alphabet;
use ecrpq_automata::nfa::Nfa;
use ecrpq_automata::relation::RegularRelation;
use ecrpq_automata::semilinear::CmpOp;
use ecrpq_automata::Regex;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A node variable (`x`, `y`, `z`, … in the paper).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeVar(pub String);

impl NodeVar {
    /// Creates a node variable.
    pub fn new(name: &str) -> Self {
        NodeVar(name.to_string())
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

/// A path variable (`π`, `ω`, `χ`, … in the paper).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathVar(pub String);

impl PathVar {
    /// Creates a path variable.
    pub fn new(name: &str) -> Self {
        PathVar(name.to_string())
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

/// A relational atom `(x, π, y)`: path variable `π` must be bound to a path
/// from the node bound to `x` to the node bound to `y`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationalAtom {
    /// Source node variable.
    pub from: NodeVar,
    /// Path variable.
    pub path: PathVar,
    /// Target node variable.
    pub to: NodeVar,
}

/// A relation atom `R(ω̄)`: the tuple of labels of the paths bound to the
/// listed path variables must belong to the regular relation. Arity-1
/// relations are ordinary regular-language atoms `L(ω)`.
#[derive(Clone, Debug)]
pub struct RelationAtom {
    /// The regular relation.
    pub relation: RegularRelation,
    /// The path variables the relation is applied to (arity many).
    pub paths: Vec<PathVar>,
    /// Optional length abstraction of the relation: linear constraints over
    /// the *lengths* of the paths on its tapes (one coefficient per tape).
    /// Used by the `Q_len` evaluation mode of Theorem 6.7; see
    /// [`infer_length_abstraction`].
    pub length_abstraction: Option<Vec<ecrpq_automata::semilinear::LinearConstraint>>,
}

/// The quantity a linear constraint refers to: the length of a path or the
/// number of occurrences of a label on a path (Section 8.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CountTarget {
    /// `|π|` — the length of the path bound to the variable.
    Length(PathVar),
    /// The number of occurrences of the given edge label on the path.
    LabelCount(PathVar, String),
}

/// One linear constraint `Σ coefficient·target  op  constant` over path
/// lengths and label counts.
#[derive(Clone, Debug)]
pub struct QLinearConstraint {
    /// Terms of the linear combination.
    pub terms: Vec<(i64, CountTarget)>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand-side constant.
    pub constant: i64,
}

/// An extended conjunctive regular path query (Definition 3.1), possibly with
/// the linear-constraint extension of Section 8.2. Plain CRPQs are the
/// special case where every relation atom has arity 1.
#[derive(Clone, Debug)]
pub struct Ecrpq {
    /// Node variables in the head `Ans(z̄, χ̄)`.
    pub head_nodes: Vec<NodeVar>,
    /// Path variables in the head.
    pub head_paths: Vec<PathVar>,
    /// Relational atoms `(x, π, y)`.
    pub atoms: Vec<RelationalAtom>,
    /// Regular language / regular relation atoms.
    pub relations: Vec<RelationAtom>,
    /// Linear constraints on lengths and label counts (empty for plain queries).
    pub linear_constraints: Vec<QLinearConstraint>,
    /// Node variables bound to named graph constants (e.g. the fixed pair of
    /// nodes in a ρ-query). Resolved against the graph at evaluation time.
    pub node_constants: Vec<(NodeVar, String)>,
    /// The alphabet the query was built against.
    pub alphabet: Alphabet,
}

impl Ecrpq {
    /// Starts building a query over the given alphabet.
    pub fn builder(alphabet: &Alphabet) -> EcrpqBuilder {
        EcrpqBuilder::new(alphabet.clone())
    }

    /// True if the query is Boolean (empty head).
    pub fn is_boolean(&self) -> bool {
        self.head_nodes.is_empty() && self.head_paths.is_empty()
    }

    /// True if the query is a CRPQ: every relation atom has arity 1 (possibly
    /// with path variables in the head, per the generalized definition at the
    /// end of Section 3).
    pub fn is_crpq(&self) -> bool {
        self.relations.iter().all(|r| r.relation.arity() <= 1)
    }

    /// The distinct node variables of the query, in order of first occurrence.
    pub fn node_vars(&self) -> Vec<NodeVar> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for a in &self.atoms {
            for v in [&a.from, &a.to] {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// The distinct path variables of the query, in order of first occurrence
    /// in the relational atoms.
    pub fn path_vars(&self) -> Vec<PathVar> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for a in &self.atoms {
            if seen.insert(a.path.clone()) {
                out.push(a.path.clone());
            }
        }
        out
    }

    /// True if some path variable occurs in more than one relational atom
    /// ("relational repetition", Section 6.3).
    pub fn has_relational_repetition(&self) -> bool {
        let mut seen = HashSet::new();
        self.atoms.iter().any(|a| !seen.insert(a.path.clone()))
    }

    /// True if the same tuple of path variables is constrained by more than
    /// one relation atom ("regular repetition", Section 6.3).
    pub fn has_regular_repetition(&self) -> bool {
        let mut seen = HashSet::new();
        self.relations.iter().any(|r| !seen.insert(r.paths.clone()))
    }

    /// True if the relational part of the query is acyclic: the underlying
    /// undirected graph on node variables with one edge per relational atom
    /// (parallel and opposite edges merged, as in hypergraph acyclicity of
    /// the induced conjunctive query) is a forest without self-loops
    /// (Section 6.3).
    pub fn is_acyclic(&self) -> bool {
        let vars = self.node_vars();
        let index: HashMap<&NodeVar, usize> =
            vars.iter().enumerate().map(|(i, v)| (v, i)).collect();
        let mut edges: HashSet<(usize, usize)> = HashSet::new();
        for a in &self.atoms {
            let (u, v) = (index[&a.from], index[&a.to]);
            if u == v {
                return false; // self-loop ⇒ cyclic
            }
            edges.insert((u.min(v), u.max(v)));
        }
        // union-find forest check
        let mut parent: Vec<usize> = (0..vars.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for (u, v) in edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru == rv {
                return false;
            }
            parent[ru] = rv;
        }
        true
    }

    /// Validates the well-formedness conditions of Definition 3.1 (adapted to
    /// allow repetitions, which the engine supports — see Proposition 6.8).
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.atoms.is_empty() {
            return Err(QueryError::NoRelationalAtoms);
        }
        let node_vars: HashSet<NodeVar> = self.node_vars().into_iter().collect();
        let path_vars: HashSet<PathVar> = self.path_vars().into_iter().collect();
        for v in &self.head_nodes {
            if !node_vars.contains(v) {
                return Err(QueryError::UnboundHeadVariable(v.name().to_string()));
            }
        }
        for p in &self.head_paths {
            if !path_vars.contains(p) {
                return Err(QueryError::UnboundHeadVariable(p.name().to_string()));
            }
        }
        for r in &self.relations {
            if r.relation.arity() != r.paths.len() {
                return Err(QueryError::RelationArityMismatch {
                    relation: r.relation.name().unwrap_or("<unnamed>").to_string(),
                    arity: r.relation.arity(),
                    supplied: r.paths.len(),
                });
            }
            for p in &r.paths {
                if !path_vars.contains(p) {
                    return Err(QueryError::UnboundPathVariable(p.name().to_string()));
                }
            }
            if let Some(abs) = &r.length_abstraction {
                for c in abs {
                    if c.coefficients.len() != r.relation.arity() {
                        return Err(QueryError::InvalidLinearConstraint(format!(
                            "length abstraction of `{}` has {} coefficients for arity {}",
                            r.relation.name().unwrap_or("<unnamed>"),
                            c.coefficients.len(),
                            r.relation.arity()
                        )));
                    }
                }
            }
        }
        for (v, _) in &self.node_constants {
            if !node_vars.contains(v) {
                return Err(QueryError::UnboundHeadVariable(v.name().to_string()));
            }
        }
        for c in &self.linear_constraints {
            for (_, t) in &c.terms {
                let pv = match t {
                    CountTarget::Length(p) => p,
                    CountTarget::LabelCount(p, _) => p,
                };
                if !path_vars.contains(pv) {
                    return Err(QueryError::UnboundPathVariable(pv.name().to_string()));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Ecrpq {
    /// Pretty-prints the query in the textual syntax of [`crate::parse`], so
    /// the output of `Display` is valid parser input: queries whose relation
    /// atoms carry parseable names (regexes, built-in names, or registered
    /// names) round-trip exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let heads: Vec<String> = self
            .head_nodes
            .iter()
            .map(|v| v.name().to_string())
            .chain(self.head_paths.iter().map(|p| p.name().to_string()))
            .collect();
        write!(f, "Ans({}) <- ", heads.join(", "))?;
        let mut parts: Vec<String> = self
            .atoms
            .iter()
            .map(|a| format!("({}, {}, {})", a.from.name(), a.path.name(), a.to.name()))
            .collect();
        for r in &self.relations {
            let name = r.relation.name().unwrap_or("<unnamed>");
            let args: Vec<&str> = r.paths.iter().map(|p| p.name()).collect();
            let kind = if r.relation.arity() == 1 { "L" } else { "R" };
            parts.push(format!("{}({}) = {}", kind, args.join(", "), name));
        }
        for c in &self.linear_constraints {
            let mut s = String::new();
            for (i, (coef, t)) in c.terms.iter().enumerate() {
                let target = match t {
                    CountTarget::Length(p) => format!("len({})", p.name()),
                    CountTarget::LabelCount(p, l) => format!("count({}, {})", l, p.name()),
                };
                let magnitude = coef.unsigned_abs();
                let term = if magnitude == 1 { target } else { format!("{magnitude}*{target}") };
                if i == 0 {
                    if *coef < 0 {
                        s.push('-');
                    }
                } else {
                    s.push_str(if *coef < 0 { " - " } else { " + " });
                }
                s.push_str(&term);
            }
            let op = match c.op {
                CmpOp::Ge => ">=",
                CmpOp::Eq => "=",
                CmpOp::Le => "<=",
            };
            parts.push(format!("{} {} {}", s, op, c.constant));
        }
        for (v, n) in &self.node_constants {
            let ident_safe = !n.is_empty()
                && n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '\'');
            if ident_safe {
                parts.push(format!("{} = :{}", v.name(), n));
            } else {
                // Quoted form with backslash escaping, so names containing
                // `"` or `\` still round-trip through the parser.
                let escaped = n.replace('\\', "\\\\").replace('"', "\\\"");
                parts.push(format!("{} = :\"{}\"", v.name(), escaped));
            }
        }
        write!(f, "{}", parts.join(", "))
    }
}

/// Infers a length abstraction for the named built-in relations of
/// [`ecrpq_automata::builtin`]: `eq` and `el` become `ℓ1 = ℓ2`, `prefix` and
/// `len_le` become `ℓ1 ≤ ℓ2`, `len_lt` becomes `ℓ1 < ℓ2` (as `ℓ2 − ℓ1 ≥ 1`),
/// and `hamming_le_k` becomes `ℓ1 = ℓ2`. Other relations yield `None`.
pub fn infer_length_abstraction(
    relation: &RegularRelation,
) -> Option<Vec<ecrpq_automata::semilinear::LinearConstraint>> {
    use ecrpq_automata::semilinear::LinearConstraint as LC;
    let name = relation.name()?;
    if name.starts_with("hamming_le_") {
        return Some(vec![LC::eq(vec![1, -1], 0)]);
    }
    match name {
        "eq" | "el" => Some(vec![LC::eq(vec![1, -1], 0)]),
        "prefix" | "len_le" => Some(vec![LC::le(vec![1, -1], 0)]),
        "len_lt" => Some(vec![LC::ge(vec![-1, 1], 1)]),
        "true" => Some(vec![]),
        _ => None,
    }
}

/// Fluent builder for [`Ecrpq`] queries.
#[derive(Clone, Debug)]
pub struct EcrpqBuilder {
    alphabet: Alphabet,
    head_nodes: Vec<NodeVar>,
    head_paths: Vec<PathVar>,
    atoms: Vec<RelationalAtom>,
    relations: Vec<RelationAtom>,
    linear_constraints: Vec<QLinearConstraint>,
    node_constants: Vec<(NodeVar, String)>,
    pending_languages: Vec<(PathVar, String)>,
    error: Option<QueryError>,
}

impl EcrpqBuilder {
    fn new(alphabet: Alphabet) -> Self {
        EcrpqBuilder {
            alphabet,
            head_nodes: Vec::new(),
            head_paths: Vec::new(),
            atoms: Vec::new(),
            relations: Vec::new(),
            linear_constraints: Vec::new(),
            node_constants: Vec::new(),
            pending_languages: Vec::new(),
            error: None,
        }
    }

    /// Adds node variables to the head.
    pub fn head_nodes(mut self, vars: &[&str]) -> Self {
        self.head_nodes.extend(vars.iter().map(|v| NodeVar::new(v)));
        self
    }

    /// Adds path variables to the head.
    pub fn head_paths(mut self, vars: &[&str]) -> Self {
        self.head_paths.extend(vars.iter().map(|v| PathVar::new(v)));
        self
    }

    /// Adds a relational atom `(from, path, to)`.
    pub fn atom(mut self, from: &str, path: &str, to: &str) -> Self {
        self.atoms.push(RelationalAtom {
            from: NodeVar::new(from),
            path: PathVar::new(path),
            to: NodeVar::new(to),
        });
        self
    }

    /// Constrains a single path variable with a regular expression over Σ
    /// (a CRPQ language atom `L(ω)`). The expression is compiled at
    /// [`build`](Self::build) time.
    pub fn language(mut self, path: &str, regex: &str) -> Self {
        self.pending_languages.push((PathVar::new(path), regex.to_string()));
        self
    }

    /// Constrains a tuple of path variables with a pre-built regular relation
    /// (an ECRPQ relation atom `R(ω̄)`).
    pub fn relation(mut self, relation: RegularRelation, paths: &[&str]) -> Self {
        let abstraction = infer_length_abstraction(&relation);
        self.relations.push(RelationAtom {
            relation,
            paths: paths.iter().map(|p| PathVar::new(p)).collect(),
            length_abstraction: abstraction,
        });
        self
    }

    /// Constrains a tuple of path variables with a relation given as a
    /// regular expression over tuple letters (compiled at build time against
    /// the query's alphabet).
    pub fn relation_regex(mut self, regex: &str, paths: &[&str]) -> Self {
        match RegularRelation::from_regex(regex, &self.alphabet, paths.len()) {
            Ok(rel) => {
                let rel = rel.normalize_padding(&self.alphabet);
                self.relations.push(RelationAtom {
                    relation: rel,
                    paths: paths.iter().map(|p| PathVar::new(p)).collect(),
                    length_abstraction: None,
                });
            }
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(QueryError::Regex(e.to_string()));
                }
            }
        }
        self
    }

    /// Overrides the length abstraction of the most recently added relation
    /// atom (used by the `Q_len` evaluation mode for relations whose
    /// abstraction cannot be inferred from their name).
    pub fn with_length_abstraction(
        mut self,
        constraints: Vec<ecrpq_automata::semilinear::LinearConstraint>,
    ) -> Self {
        if let Some(last) = self.relations.last_mut() {
            last.length_abstraction = Some(constraints);
        } else if self.error.is_none() {
            self.error = Some(QueryError::Unsupported(
                "with_length_abstraction called before any relation atom".to_string(),
            ));
        }
        self
    }

    /// Binds a node variable to a named node of the graph (a constant).
    pub fn bind_node(mut self, var: &str, graph_node_name: &str) -> Self {
        self.node_constants.push((NodeVar::new(var), graph_node_name.to_string()));
        self
    }

    /// Adds a linear constraint over path lengths and label counts
    /// (Section 8.2).
    pub fn linear_constraint(
        mut self,
        terms: Vec<(i64, CountTarget)>,
        op: CmpOp,
        constant: i64,
    ) -> Self {
        self.linear_constraints.push(QLinearConstraint { terms, op, constant });
        self
    }

    /// Finishes the query, compiling pending regular expressions and
    /// validating well-formedness.
    pub fn build(mut self) -> Result<Ecrpq, QueryError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        for (path, regex) in std::mem::take(&mut self.pending_languages) {
            let parsed = Regex::parse(&regex).map_err(|e| QueryError::Regex(e.to_string()))?;
            let nfa: Nfa<ecrpq_automata::Symbol> =
                parsed.compile(&self.alphabet).map_err(|e| QueryError::Regex(e.to_string()))?;
            // Lift the language to an arity-1 relation.
            let lifted = nfa.map_symbols(|&s| Some(ecrpq_automata::TupleSym::new(vec![Some(s)])));
            let rel = RegularRelation::from_nfa(1, lifted).named(&regex);
            self.relations.push(RelationAtom {
                relation: rel,
                paths: vec![path],
                length_abstraction: None,
            });
        }
        let q = Ecrpq {
            head_nodes: self.head_nodes,
            head_paths: self.head_paths,
            atoms: self.atoms,
            relations: self.relations,
            linear_constraints: self.linear_constraints,
            node_constants: self.node_constants,
            alphabet: self.alphabet,
        };
        q.validate()?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecrpq_automata::builtin;

    fn ab() -> Alphabet {
        Alphabet::from_labels(["a", "b"])
    }

    #[test]
    fn build_squares_query() {
        // The "squared strings" query from the introduction:
        // Ans(x, y) ← (x, π1, z), (z, π2, y), π1 = π2.
        let al = ab();
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "pi1", "z")
            .atom("z", "pi2", "y")
            .relation(builtin::equality(&al), &["pi1", "pi2"])
            .build()
            .unwrap();
        assert!(!q.is_boolean());
        assert!(!q.is_crpq());
        assert!(q.is_acyclic());
        assert!(!q.has_relational_repetition());
        assert_eq!(q.node_vars().len(), 3);
        assert_eq!(q.path_vars().len(), 2);
        let s = q.to_string();
        assert!(s.contains("Ans(x, y)"));
        assert!(s.contains("R(pi1, pi2) = eq"));
    }

    #[test]
    fn build_crpq_with_languages() {
        let al = ab();
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p", "y")
            .language("p", "a+ b*")
            .build()
            .unwrap();
        assert!(q.is_crpq());
        assert!(q.is_acyclic());
        assert_eq!(q.relations.len(), 1);
        assert_eq!(q.relations[0].relation.arity(), 1);
    }

    #[test]
    fn validation_errors() {
        let al = ab();
        // unbound head variable
        let e = Ecrpq::builder(&al).head_nodes(&["w"]).atom("x", "p", "y").build().unwrap_err();
        assert!(matches!(e, QueryError::UnboundHeadVariable(_)));
        // no atoms
        let e = Ecrpq::builder(&al).build().unwrap_err();
        assert_eq!(e, QueryError::NoRelationalAtoms);
        // relation over unbound path variable
        let e = Ecrpq::builder(&al)
            .atom("x", "p", "y")
            .relation(builtin::equality(&al), &["p", "q"])
            .build()
            .unwrap_err();
        assert!(matches!(e, QueryError::UnboundPathVariable(_)));
        // bad regex
        let e = Ecrpq::builder(&al).atom("x", "p", "y").language("p", "(a").build().unwrap_err();
        assert!(matches!(e, QueryError::Regex(_)));
        // unknown label in a relation regex
        let e = Ecrpq::builder(&al)
            .atom("x", "p", "y")
            .atom("y", "q", "z")
            .relation_regex("<c,c>*", &["p", "q"])
            .build()
            .unwrap_err();
        assert!(matches!(e, QueryError::Regex(_)));
    }

    #[test]
    fn acyclicity_detection() {
        let al = ab();
        // a triangle of atoms is cyclic
        let cyclic = Ecrpq::builder(&al)
            .atom("x", "p1", "y")
            .atom("y", "p2", "z")
            .atom("z", "p3", "x")
            .build()
            .unwrap();
        assert!(!cyclic.is_acyclic());
        // two atoms between the same pair of variables (in either direction)
        // merge into one hyperedge and stay acyclic
        let back_and_forth =
            Ecrpq::builder(&al).atom("x", "p1", "y").atom("y", "p2", "x").build().unwrap();
        assert!(back_and_forth.is_acyclic());
        // chain is acyclic
        let chain = Ecrpq::builder(&al)
            .atom("x", "p1", "y")
            .atom("y", "p2", "z")
            .atom("z", "p3", "w")
            .build()
            .unwrap();
        assert!(chain.is_acyclic());
        // self-loop atom is cyclic
        let selfloop = Ecrpq::builder(&al).atom("x", "p", "x").build().unwrap();
        assert!(!selfloop.is_acyclic());
    }

    #[test]
    fn repetition_detection() {
        let al = ab();
        let rep = Ecrpq::builder(&al).atom("x", "p", "y").atom("u", "p", "v").build().unwrap();
        assert!(rep.has_relational_repetition());
        let reg_rep = Ecrpq::builder(&al)
            .atom("x", "p", "y")
            .language("p", "a*")
            .language("p", "b*")
            .build()
            .unwrap();
        assert!(reg_rep.has_regular_repetition());
        let clean = Ecrpq::builder(&al).atom("x", "p", "y").language("p", "a*").build().unwrap();
        assert!(!clean.has_relational_repetition());
        assert!(!clean.has_regular_repetition());
    }

    #[test]
    fn boolean_queries_and_constants() {
        let al = ab();
        let q = Ecrpq::builder(&al).atom("x", "p", "y").bind_node("x", "london").build().unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.node_constants.len(), 1);
        // constant on a variable not in the body is rejected
        let e =
            Ecrpq::builder(&al).atom("x", "p", "y").bind_node("w", "london").build().unwrap_err();
        assert!(matches!(e, QueryError::UnboundHeadVariable(_)));
    }

    #[test]
    fn length_abstractions_inferred_for_builtins() {
        let al = ab();
        let q = Ecrpq::builder(&al)
            .atom("x", "p1", "y")
            .atom("y", "p2", "z")
            .relation(builtin::equal_length(&al), &["p1", "p2"])
            .build()
            .unwrap();
        assert!(q.relations[0].length_abstraction.is_some());
        assert!(infer_length_abstraction(&builtin::prefix(&al)).is_some());
        assert!(infer_length_abstraction(&builtin::edit_distance_leq(&al, 1)).is_none());
    }

    #[test]
    fn linear_constraint_validation() {
        let al = ab();
        let q = Ecrpq::builder(&al)
            .atom("x", "p", "y")
            .linear_constraint(
                vec![(1, CountTarget::LabelCount(PathVar::new("p"), "a".into()))],
                CmpOp::Ge,
                2,
            )
            .build()
            .unwrap();
        assert_eq!(q.linear_constraints.len(), 1);
        let e = Ecrpq::builder(&al)
            .atom("x", "p", "y")
            .linear_constraint(vec![(1, CountTarget::Length(PathVar::new("q")))], CmpOp::Ge, 2)
            .build()
            .unwrap_err();
        assert!(matches!(e, QueryError::UnboundPathVariable(_)));
    }
}
