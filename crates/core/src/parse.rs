//! Textual ECRPQ syntax: the parse phase of the parse → compile →
//! bind/execute pipeline.
//!
//! The concrete syntax mirrors the paper's rule notation:
//!
//! ```text
//! Ans(x, y) <- (x, pi, y), (y, om, z), L(pi) = (a|b)* c,
//!              R(pi, om) = el, len(pi) - len(om) >= 2, x = :start
//! ```
//!
//! # Grammar (EBNF)
//!
//! ```text
//! query      = "Ans" "(" [ var { "," var } ] ")" "<-" clause { "," clause } ;
//! clause     = atom | language | relation | constraint | binding ;
//! atom       = "(" var "," var "," var ")" ;
//! language   = "L" "(" var ")" "=" regex ;
//! relation   = "R" "(" var { "," var } ")" "=" relspec ;
//! relspec    = builtin | regex ;
//! builtin    = "eq" | "equality" | "el" | "equal_length"
//!            | "len_lt" | "length_less" | "len_le" | "length_leq"
//!            | "prefix" | "true" | "universal"
//!            | "edit_le_" int | "hamming_le_" int ;
//! constraint = [ "-" ] term { ("+" | "-") term } cmp int ;
//! term       = [ int "*" ] ( "len" "(" var ")" | "count" "(" label "," var ")" ) ;
//! cmp        = ">=" | "<=" | "=" ;
//! binding    = var "=" ":" ( name | quoted ) ;
//! var, label = ident ;           (* [A-Za-z0-9_][A-Za-z0-9_']* *)
//! quoted     = '"' ... '"' ;     (* node names that are not idents *)
//! ```
//!
//! Head variables are classified after the body is read: a head variable
//! that occurs as the path of some relational atom is a path variable, all
//! others are node variables. `regex` is the syntax of
//! [`ecrpq_automata::Regex`] (labels, `.`, `()`, `|`, `*`, `+`, `?`, and
//! tuple letters `<a,b>` with `_` for `⊥`), read up to the next top-level
//! comma. Every error carries the byte [`Span`] of the offending input.
//!
//! [`std::fmt::Display`] for [`Ecrpq`] emits exactly this syntax, so
//! `parse → Display → parse` is the identity on the textual fragment (see
//! `tests/parser_roundtrip.rs`).

use crate::query::{infer_length_abstraction, NodeVar, PathVar};
use crate::query::{CountTarget, Ecrpq, QLinearConstraint, RelationAtom, RelationalAtom};
use ecrpq_automata::alphabet::{Alphabet, Symbol, TupleSym};
use ecrpq_automata::builtin;
use ecrpq_automata::nfa::Nfa;
use ecrpq_automata::regex::{Regex, RegexError};
use ecrpq_automata::relation::RegularRelation;
use ecrpq_automata::semilinear::CmpOp;
use std::fmt;

/// A byte range of the parser input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first offending character.
    pub start: usize,
    /// Byte offset one past the last offending character.
    pub end: usize,
}

impl Span {
    fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    fn point(at: usize) -> Span {
        Span { start: at, end: at + 1 }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A parse error: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// The byte range of the offending input.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(span: Span, message: impl Into<String>) -> ParseError {
        ParseError { span, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for crate::error::QueryError {
    fn from(e: ParseError) -> Self {
        crate::error::QueryError::Regex(e.to_string())
    }
}

/// Parses a textual ECRPQ over `alphabet`.
pub fn parse_query(input: &str, alphabet: &Alphabet) -> Result<Ecrpq, ParseError> {
    parse_query_with(input, alphabet, &[])
}

/// Parses a textual ECRPQ, additionally resolving relation names from
/// `registry` (for relations that cannot be written as a regex or built-in
/// name, e.g. a ρ-isomorphism relation built from a subproperty table).
/// Registry names take precedence over built-in names.
pub fn parse_query_with(
    input: &str,
    alphabet: &Alphabet,
    registry: &[(&str, RegularRelation)],
) -> Result<Ecrpq, ParseError> {
    Parser { input, pos: 0, alphabet, registry }.query()
}

impl Ecrpq {
    /// Parses the textual syntax of [`crate::parse`] (the parse phase of the
    /// prepared-query pipeline).
    pub fn parse(input: &str, alphabet: &Alphabet) -> Result<Ecrpq, ParseError> {
        parse_query(input, alphabet)
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    alphabet: &'a Alphabet,
    registry: &'a [(&'a str, RegularRelation)],
}

/// One parsed body clause, in textual order.
enum Clause {
    Atom(RelationalAtom),
    Relation(RelationAtom),
    Constraint(QLinearConstraint),
    Binding { var: String, var_span: Span, name: String },
}

impl<'a> Parser<'a> {
    // ---------------------------------------------------------------- lexing

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected `{c}`")))
        }
    }

    fn unexpected(&mut self, expected: &str) -> ParseError {
        let at = {
            self.skip_ws();
            self.pos
        };
        match self.rest().chars().next() {
            Some(c) => ParseError::new(Span::point(at), format!("{expected}, found `{c}`")),
            None => ParseError::new(Span::point(at), format!("{expected}, found end of input")),
        }
    }

    fn is_ident_char(c: char) -> bool {
        c.is_ascii_alphanumeric() || c == '_' || c == '\''
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        self.skip_ws();
        let start = self.pos;
        let mut end = start;
        for c in self.rest().chars() {
            if Self::is_ident_char(c) {
                end += c.len_utf8();
            } else {
                break;
            }
        }
        if end == start {
            return Err(self.unexpected(&format!("expected {what}")));
        }
        self.pos = end;
        Ok((self.input[start..end].to_string(), Span::new(start, end)))
    }

    fn integer(&mut self, what: &str) -> Result<(i64, Span), ParseError> {
        self.skip_ws();
        let start = self.pos;
        let mut end = start;
        let mut chars = self.rest().chars();
        if let Some(c) = chars.next() {
            if c == '-' || c.is_ascii_digit() {
                end += 1;
            }
        }
        for c in chars {
            if c.is_ascii_digit() {
                end += 1;
            } else {
                break;
            }
        }
        let text = &self.input[start..end];
        let value: i64 = text.parse().map_err(|_| self.unexpected(&format!("expected {what}")))?;
        self.pos = end;
        Ok((value, Span::new(start, end)))
    }

    /// Reads input up to (not including) the next top-level `,` — a regular
    /// expression or relation name. `(`/`)` and `<`/`>` nest.
    fn until_comma(&mut self) -> (String, Span) {
        self.skip_ws();
        let start = self.pos;
        let mut depth = 0i32;
        let mut end = start;
        for c in self.rest().chars() {
            match c {
                '(' | '<' => depth += 1,
                ')' | '>' => depth -= 1,
                ',' if depth == 0 => break,
                _ => {}
            }
            end += c.len_utf8();
        }
        self.pos = end;
        let text = self.input[start..end].trim_end();
        (text.to_string(), Span::new(start, start + text.len()))
    }

    // --------------------------------------------------------------- parsing

    fn query(mut self) -> Result<Ecrpq, ParseError> {
        // Head: Ans(v1, ..., vk)
        let (kw, kw_span) = self.ident("the head keyword `Ans`")?;
        if kw != "Ans" {
            return Err(ParseError::new(kw_span, format!("expected `Ans`, found `{kw}`")));
        }
        self.expect('(')?;
        let mut head: Vec<(String, Span)> = Vec::new();
        if self.peek() != Some(')') {
            loop {
                head.push(self.ident("a head variable")?);
                if !self.eat(',') {
                    break;
                }
            }
        }
        self.expect(')')?;
        self.expect('<')?;
        if !self.eat('-') {
            return Err(self.unexpected("expected `<-`"));
        }

        // Body clauses.
        let mut clauses: Vec<Clause> = Vec::new();
        loop {
            clauses.push(self.clause()?);
            self.skip_ws();
            if !self.eat(',') {
                break;
            }
        }
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(self.unexpected("expected `,` or end of query"));
        }

        self.assemble(head, clauses)
    }

    fn clause(&mut self) -> Result<Clause, ParseError> {
        match self.peek() {
            Some('(') => self.atom(),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.constraint(None),
            Some(_) => {
                let (name, span) = self.ident("a clause")?;
                match self.peek() {
                    Some('(') if name == "L" => self.language(),
                    Some('(') if name == "R" => self.relation(),
                    Some('(') if name == "len" || name == "count" => {
                        self.constraint(Some((name, span)))
                    }
                    Some('=') => self.binding(name, span),
                    _ => Err(ParseError::new(
                        span,
                        format!(
                            "expected a clause: an atom `(x, p, y)`, `L(p) = <regex>`, \
                             `R(p, ...) = <relation>`, a linear constraint, or a binding \
                             `x = :node` (found `{name}`)"
                        ),
                    )),
                }
            }
            None => Err(self.unexpected("expected a clause")),
        }
    }

    fn atom(&mut self) -> Result<Clause, ParseError> {
        self.expect('(')?;
        let (from, _) = self.ident("a node variable")?;
        self.expect(',')?;
        let (path, _) = self.ident("a path variable")?;
        self.expect(',')?;
        let (to, _) = self.ident("a node variable")?;
        self.expect(')')?;
        Ok(Clause::Atom(RelationalAtom {
            from: NodeVar::new(&from),
            path: PathVar::new(&path),
            to: NodeVar::new(&to),
        }))
    }

    fn language(&mut self) -> Result<Clause, ParseError> {
        self.expect('(')?;
        let (path, _) = self.ident("a path variable")?;
        self.expect(')')?;
        self.expect('=')?;
        let (text, span) = self.until_comma();
        if text.is_empty() {
            return Err(ParseError::new(span, "expected a regular expression".to_string()));
        }
        let parsed = Regex::parse(&text).map_err(|e| regex_error(e, span))?;
        let nfa: Nfa<Symbol> = parsed.compile(self.alphabet).map_err(|e| regex_error(e, span))?;
        let lifted = nfa.map_symbols(|&s| Some(TupleSym::new(vec![Some(s)])));
        let relation = RegularRelation::from_nfa(1, lifted).named(&text);
        Ok(Clause::Relation(RelationAtom {
            relation,
            paths: vec![PathVar::new(&path)],
            length_abstraction: None,
        }))
    }

    fn relation(&mut self) -> Result<Clause, ParseError> {
        self.expect('(')?;
        let mut paths: Vec<PathVar> = Vec::new();
        loop {
            let (p, _) = self.ident("a path variable")?;
            paths.push(PathVar::new(&p));
            if !self.eat(',') {
                break;
            }
        }
        self.expect(')')?;
        self.expect('=')?;
        let (text, span) = self.until_comma();
        if text.is_empty() {
            return Err(ParseError::new(
                span,
                "expected a relation name or regular expression".to_string(),
            ));
        }
        // A single identifier resolves as a registry or built-in relation
        // name; anything else is a regular expression over tuple letters.
        let relation = if text.chars().all(Self::is_ident_char) {
            match self.named_relation(&text) {
                Some(rel) => {
                    if rel.arity() != paths.len() {
                        return Err(ParseError::new(
                            span,
                            format!(
                                "relation `{text}` has arity {} but was applied to {} path \
                                 variable(s)",
                                rel.arity(),
                                paths.len()
                            ),
                        ));
                    }
                    rel
                }
                None => {
                    return Err(ParseError::new(
                        span,
                        format!(
                            "unknown relation `{text}` (expected a built-in such as `eq`, \
                             `el`, `prefix`, `len_lt`, `len_le`, `edit_le_<k>`, \
                             `hamming_le_<k>`, a registered relation, or a regular \
                             expression over tuple letters)"
                        ),
                    ))
                }
            }
        } else {
            RegularRelation::from_regex(&text, self.alphabet, paths.len())
                .map_err(|e| regex_error(e, span))?
                .normalize_padding(self.alphabet)
        };
        let length_abstraction = infer_length_abstraction(&relation);
        Ok(Clause::Relation(RelationAtom { relation, paths, length_abstraction }))
    }

    /// Resolves a relation name: registry entries first, then built-ins.
    fn named_relation(&self, name: &str) -> Option<RegularRelation> {
        if let Some((_, rel)) = self.registry.iter().find(|(n, _)| *n == name) {
            return Some(rel.clone());
        }
        if let Some(k) = name.strip_prefix("edit_le_").and_then(|s| s.parse::<usize>().ok()) {
            return Some(builtin::edit_distance_leq(self.alphabet, k));
        }
        if let Some(k) = name.strip_prefix("hamming_le_").and_then(|s| s.parse::<usize>().ok()) {
            return Some(builtin::hamming_leq(self.alphabet, k));
        }
        match name {
            "eq" | "equality" => Some(builtin::equality(self.alphabet)),
            "el" | "equal_length" => Some(builtin::equal_length(self.alphabet)),
            "len_lt" | "length_less" => Some(builtin::length_less(self.alphabet)),
            "len_le" | "length_leq" => Some(builtin::length_leq(self.alphabet)),
            "prefix" => Some(builtin::prefix(self.alphabet)),
            "true" | "universal" => Some(builtin::universal(self.alphabet)),
            _ => None,
        }
    }

    /// Parses a linear constraint. `first` is a `len`/`count` keyword the
    /// clause dispatcher already consumed.
    fn constraint(&mut self, first: Option<(String, Span)>) -> Result<Clause, ParseError> {
        let mut terms: Vec<(i64, CountTarget)> = Vec::new();
        let mut lead = first;
        let mut sign: i64 = if lead.is_none() && self.peek() == Some('-') {
            self.eat('-');
            -1
        } else {
            if self.peek() == Some('+') {
                self.eat('+');
            }
            1
        };
        loop {
            terms.push(self.term(sign, lead.take())?);
            match self.peek() {
                Some('+') => {
                    self.eat('+');
                    sign = 1;
                }
                Some('-') => {
                    self.eat('-');
                    sign = -1;
                }
                _ => break,
            }
        }
        let op = match self.peek() {
            Some('>') => {
                self.eat('>');
                self.expect('=')?;
                CmpOp::Ge
            }
            Some('<') => {
                self.eat('<');
                self.expect('=')?;
                CmpOp::Le
            }
            Some('=') => {
                self.eat('=');
                CmpOp::Eq
            }
            _ => return Err(self.unexpected("expected a comparison (`>=`, `<=`, or `=`)")),
        };
        let (constant, _) = self.integer("an integer constant")?;
        Ok(Clause::Constraint(QLinearConstraint { terms, op, constant }))
    }

    /// One constraint term: `[int *] len(p)` or `[int *] count(label, p)`.
    /// `sign` is the sign from the surrounding `+`/`-` chain; `keyword` is a
    /// pre-consumed `len`/`count` identifier.
    fn term(
        &mut self,
        sign: i64,
        keyword: Option<(String, Span)>,
    ) -> Result<(i64, CountTarget), ParseError> {
        let mut coeff = 1i64;
        let (kw, kw_span) = match keyword {
            Some(k) => k,
            None => {
                if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    let (c, _) = self.integer("a coefficient")?;
                    coeff = c;
                    self.expect('*')?;
                }
                self.ident("`len` or `count`")?
            }
        };
        let target = match kw.as_str() {
            "len" => {
                self.expect('(')?;
                let (p, _) = self.ident("a path variable")?;
                self.expect(')')?;
                CountTarget::Length(PathVar::new(&p))
            }
            "count" => {
                self.expect('(')?;
                let (label, _) = self.ident("an edge label")?;
                self.expect(',')?;
                let (p, _) = self.ident("a path variable")?;
                self.expect(')')?;
                CountTarget::LabelCount(PathVar::new(&p), label)
            }
            other => {
                return Err(ParseError::new(
                    kw_span,
                    format!("expected `len` or `count` in a linear constraint, found `{other}`"),
                ))
            }
        };
        Ok((sign * coeff, target))
    }

    /// A node-constant binding `x = :name` or `x = :"name with spaces"`.
    fn binding(&mut self, var: String, var_span: Span) -> Result<Clause, ParseError> {
        self.expect('=')?;
        self.expect(':')?;
        self.skip_ws();
        if self.eat('"') {
            let start = self.pos;
            let mut name = String::new();
            let mut chars = self.rest().char_indices();
            loop {
                match chars.next() {
                    Some((i, '"')) => {
                        self.pos = start + i + 1;
                        return Ok(Clause::Binding { var, var_span, name });
                    }
                    Some((_, '\\')) => match chars.next() {
                        Some((_, c @ ('"' | '\\'))) => name.push(c),
                        Some((_, c)) => {
                            name.push('\\');
                            name.push(c);
                        }
                        None => break,
                    },
                    Some((_, c)) => name.push(c),
                    None => break,
                }
            }
            Err(ParseError::new(Span::point(start), "unterminated quoted node name".to_string()))
        } else {
            let (name, _) = self.ident("a node name")?;
            Ok(Clause::Binding { var, var_span, name })
        }
    }

    // ------------------------------------------------------------- assembly

    fn assemble(
        &self,
        head: Vec<(String, Span)>,
        clauses: Vec<Clause>,
    ) -> Result<Ecrpq, ParseError> {
        let mut atoms: Vec<RelationalAtom> = Vec::new();
        let mut relations: Vec<RelationAtom> = Vec::new();
        let mut linear_constraints: Vec<QLinearConstraint> = Vec::new();
        let mut bindings: Vec<(String, Span, String)> = Vec::new();
        for c in clauses {
            match c {
                Clause::Atom(a) => atoms.push(a),
                Clause::Relation(r) => relations.push(r),
                Clause::Constraint(c) => linear_constraints.push(c),
                Clause::Binding { var, var_span, name } => bindings.push((var, var_span, name)),
            }
        }
        if atoms.is_empty() {
            return Err(ParseError::new(
                Span::new(0, self.input.len()),
                "a query must contain at least one relational atom (x, p, y)".to_string(),
            ));
        }

        // Classify head variables: path variables are those bound as the
        // path of some relational atom.
        let path_names: Vec<&str> = atoms.iter().map(|a| a.path.name()).collect();
        let node_names: Vec<&str> =
            atoms.iter().flat_map(|a| [a.from.name(), a.to.name()]).collect();
        let mut head_nodes: Vec<NodeVar> = Vec::new();
        let mut head_paths: Vec<PathVar> = Vec::new();
        for (v, span) in &head {
            if path_names.contains(&v.as_str()) {
                head_paths.push(PathVar::new(v));
            } else if node_names.contains(&v.as_str()) {
                head_nodes.push(NodeVar::new(v));
            } else {
                return Err(ParseError::new(
                    *span,
                    format!("head variable `{v}` does not occur in the query body"),
                ));
            }
        }
        // Bindings must refer to body node variables.
        let mut node_constants: Vec<(NodeVar, String)> = Vec::new();
        for (v, span, name) in bindings {
            if !node_names.contains(&v.as_str()) {
                return Err(ParseError::new(
                    span,
                    format!("bound variable `{v}` does not occur in the query body"),
                ));
            }
            node_constants.push((NodeVar::new(&v), name));
        }

        let q = Ecrpq {
            head_nodes,
            head_paths,
            atoms,
            relations,
            linear_constraints,
            node_constants,
            alphabet: self.alphabet.clone(),
        };
        q.validate().map_err(|e| ParseError::new(Span::new(0, self.input.len()), e.to_string()))?;
        Ok(q)
    }
}

fn regex_error(e: RegexError, span: Span) -> ParseError {
    match e {
        RegexError::Parse { position, message } => {
            let at = (span.start + position).min(span.end.saturating_sub(1)).max(span.start);
            ParseError::new(Span::point(at), format!("in regular expression: {message}"))
        }
        other => ParseError::new(span, format!("in regular expression: {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{self, EvalConfig};
    use ecrpq_graph::generators;

    fn ab() -> Alphabet {
        Alphabet::from_labels(["a", "b"])
    }

    #[test]
    fn parses_the_issue_example() {
        let al = ab();
        let q = parse_query(
            "Ans(x, y) <- (x, pi, y), (y, om, z), L(pi) = (a|b)* a, R(pi, om) = equal_length, \
             len(pi) - len(om) >= 2",
            &al,
        )
        .unwrap();
        assert_eq!(q.head_nodes.len(), 2);
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.relations.len(), 2);
        assert_eq!(q.linear_constraints.len(), 1);
        assert_eq!(q.relations[1].relation.name(), Some("el"));
        assert!(q.relations[1].length_abstraction.is_some());
    }

    #[test]
    fn parsed_queries_evaluate_like_built_ones() {
        let g = generators::cycle_graph(4, "a");
        let al = g.alphabet().clone();
        let built = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .language("p1", "a+")
            .language("p2", "a+")
            .relation(builtin::equal_length(&al), &["p1", "p2"])
            .build()
            .unwrap();
        let parsed = parse_query(
            "Ans(x, y) <- (x, p1, z), (z, p2, y), L(p1) = a+, L(p2) = a+, R(p1, p2) = el",
            &al,
        )
        .unwrap();
        let cfg = EvalConfig::default();
        let mut a = eval::eval_nodes(&built, &g, &cfg).unwrap();
        let mut b = eval::eval_nodes(&parsed, &g, &cfg).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn boolean_heads_constants_and_quoted_names() {
        let al = ab();
        let q = parse_query(r#"Ans() <- (x, p, y), x = :start, y = :"end node""#, &al).unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.node_constants.len(), 2);
        assert_eq!(q.node_constants[1].1, "end node");
    }

    #[test]
    fn quoted_names_with_escapes_round_trip() {
        let al = ab();
        let q = parse_query(r#"Ans() <- (x, p, y), x = :"say \"hi\" \\ there""#, &al).unwrap();
        assert_eq!(q.node_constants[0].1, r#"say "hi" \ there"#);
        let d = q.to_string();
        let q2 = parse_query(&d, &al).unwrap();
        assert_eq!(q2.node_constants, q.node_constants);
        assert_eq!(q2.to_string(), d);
    }

    #[test]
    fn head_paths_are_recognized() {
        let al = ab();
        let q = parse_query("Ans(x, p) <- (x, p, y), L(p) = a*", &al).unwrap();
        assert_eq!(q.head_nodes, vec![NodeVar::new("x")]);
        assert_eq!(q.head_paths, vec![PathVar::new("p")]);
    }

    #[test]
    fn relation_regexes_and_parameterized_builtins() {
        let al = ab();
        let q = parse_query(
            "Ans() <- (x, p, y), (y, q, z), R(p, q) = (<a,a>|<b,b>)*, R(p, q) = edit_le_1",
            &al,
        )
        .unwrap();
        assert_eq!(q.relations.len(), 2);
        assert_eq!(q.relations[0].relation.arity(), 2);
        assert_eq!(q.relations[1].relation.name(), Some("edit_le_1"));
    }

    #[test]
    fn registry_relations_resolve() {
        let al = ab();
        let rho = builtin::rho_isomorphism(&al, &[], true);
        let q = parse_query_with(
            "Ans() <- (x, p, y), (u, q, v), R(p, q) = rho_iso",
            &al,
            &[("rho_iso", rho)],
        )
        .unwrap();
        assert_eq!(q.relations[0].relation.name(), Some("rho_iso"));
    }

    // ---------------------------------------------------------- error spans

    /// Golden span-accurate error messages: `(input, span, message)`.
    #[test]
    fn golden_error_messages() {
        let al = ab();
        let cases: &[(&str, (usize, usize), &str)] = &[
            ("Answer(x) <- (x, p, y)", (0, 6), "expected `Ans`, found `Answer`"),
            ("Ans(x <- (x, p, y)", (6, 7), "expected `)`, found `<`"),
            ("Ans(x) <- (x, p y)", (16, 17), "expected `,`, found `y`"),
            ("Ans(w) <- (x, p, y)", (4, 5), "head variable `w` does not occur in the query body"),
            ("Ans(x) <- (x, p, y), L(p) = (a", (29, 30), "in regular expression: expected `)`"),
            (
                "Ans(x) <- (x, p, y), R(p) = frobnicate",
                (28, 38),
                "unknown relation `frobnicate` (expected a built-in such as `eq`, `el`, \
                 `prefix`, `len_lt`, `len_le`, `edit_le_<k>`, `hamming_le_<k>`, a registered \
                 relation, or a regular expression over tuple letters)",
            ),
            (
                "Ans(x) <- (x, p, y), R(p) = eq",
                (28, 30),
                "relation `eq` has arity 2 but was applied to 1 path variable(s)",
            ),
            ("Ans(x) <- (x, p, y), len(p) > 2", (30, 31), "expected `=`, found `2`"),
            (
                "Ans(x) <- (x, p, y), z = :home",
                (21, 22),
                "bound variable `z` does not occur in the query body",
            ),
        ];
        for (input, (start, end), message) in cases {
            let err = parse_query(input, &al).unwrap_err();
            assert_eq!(
                (err.span.start, err.span.end, err.message.as_str()),
                (*start, *end, *message),
                "for input {input:?}"
            );
        }
    }

    #[test]
    fn display_round_trips() {
        let al = ab();
        let inputs = [
            "Ans(x, y) <- (x, p1, z), (z, p2, y), L(p1) = a+, R(p1, p2) = eq",
            "Ans() <- (x, p, y), len(p) >= 3, x = :start",
            "Ans(x, p) <- (x, p, y), L(p) = (a|b)* a, 2*count(a, p) - len(p) <= 0",
        ];
        for input in inputs {
            let q1 = parse_query(input, &al).unwrap();
            let d1 = q1.to_string();
            let q2 = parse_query(&d1, &al).unwrap();
            assert_eq!(d1, q2.to_string(), "Display not a fixpoint for {input:?}");
        }
    }
}
