//! # ecrpq
//!
//! Extended conjunctive regular path queries (ECRPQs) over graph databases —
//! a from-scratch Rust implementation of the query language, evaluation
//! algorithms, static analysis, and extensions studied in
//!
//! > Pablo Barceló, Leonid Libkin, Anthony W. Lin, Peter T. Wood.
//! > *Expressive Languages for Path Queries over Graph-Structured Data.*
//! > PODS 2010; ACM TODS 37(4), 2012.
//!
//! ECRPQs extend the classical conjunctive regular path queries (CRPQs) in
//! two ways: relation atoms may constrain *tuples* of paths with regular
//! relations (equality, equal length, prefix, bounded edit distance, …), and
//! queries may output paths, not just nodes.
//!
//! ## Quick start
//!
//! ```
//! use ecrpq::prelude::*;
//!
//! // A small graph: advisor edges between people.
//! let mut g = GraphDb::empty();
//! let alice = g.add_named_node("alice");
//! let bob = g.add_named_node("bob");
//! let carol = g.add_named_node("carol");
//! let dana = g.add_named_node("dana");
//! let emma = g.add_named_node("emma");
//! g.add_edge_labeled(alice, "advisor", carol);
//! g.add_edge_labeled(carol, "advisor", emma);
//! g.add_edge_labeled(bob, "advisor", dana);
//! g.add_edge_labeled(dana, "advisor", emma);
//!
//! // "Pairs of people with same-length advisor chains to a common ancestor" —
//! // the introduction's example that CRPQs cannot express.
//! let alphabet = g.alphabet().clone();
//! let q = Ecrpq::builder(&alphabet)
//!     .head_nodes(&["x", "y"])
//!     .atom("x", "p1", "z")
//!     .atom("y", "p2", "z")
//!     .language("p1", "advisor+")
//!     .language("p2", "advisor+")
//!     .relation(builtin::equal_length(&alphabet), &["p1", "p2"])
//!     .build()
//!     .unwrap();
//!
//! let answers = eval::eval_nodes(&q, &g, &EvalConfig::default()).unwrap();
//! assert!(answers.contains(&vec![alice, bob]));    // both two steps from emma
//! assert!(!answers.contains(&vec![alice, carol])); // chains of different length only
//! ```
//!
//! ## Crate layout
//!
//! | module | contents | paper sections |
//! |--------|----------|----------------|
//! | [`query`] | CRPQ/ECRPQ abstract syntax, builder, validation, classification | §2, §3, §6.3, §8.2 |
//! | [`eval`] | node/path evaluation, membership checking, answer automata, acyclic CRPQs, length abstraction, linear constraints, negation | §5, §6, §8 |
//! | [`containment`] | bounded canonical-database containment checking | §7 |
//! | [`expressiveness`] | `strings(Q)`, pattern compilation, separating queries | §3, §4 |

#![warn(missing_docs)]

pub mod containment;
pub mod error;
pub mod eval;
pub mod expressiveness;
pub mod parse;
pub mod persist;
pub mod query;

pub use ecrpq_util::trace::{Trace, TraceSpan};
pub use error::QueryError;
pub use eval::{Answer, BoundPlan, BoundStatement, EvalConfig, EvalOptions, PreparedQuery};

/// Compile-time guarantee that the compiled query pipeline is shareable
/// across threads: a server prepares a query once (`Arc<PreparedQuery>`),
/// binds it to a cataloged graph (`BoundStatement`), and runs it from a
/// worker pool. Any non-`Send`/`Sync` state sneaking into the pipeline
/// (an `Rc`-based cache, say) breaks this build immediately.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<query::Ecrpq>();
    assert_send_sync::<PreparedQuery>();
    assert_send_sync::<BoundStatement>();
};
pub use parse::{parse_query, parse_query_with, ParseError};
pub use query::{CountTarget, Ecrpq, NodeVar, PathVar};

/// Convenient re-exports for examples and downstream users.
pub mod prelude {
    pub use crate::eval::{
        self, Answer, BoundPlan, BoundStatement, EvalConfig, EvalOptions, PreparedQuery,
    };
    pub use crate::parse::{parse_query, parse_query_with, ParseError};
    pub use crate::query::{CountTarget, Ecrpq, NodeVar, PathVar};
    pub use crate::QueryError;
    pub use ecrpq_automata::builtin;
    pub use ecrpq_automata::{Alphabet, Regex, RegularRelation, Symbol};
    pub use ecrpq_graph::{generators, GraphDb, NodeId, Path};
}
