//! Shim crate whose only purpose is to host the workspace-level integration
//! tests found in the repository's top-level `tests/` directory (see the
//! `[[test]]` entries in this crate's `Cargo.toml`). The crate itself exposes
//! nothing.
