//! Shim crate hosting the workspace-level integration tests found in the
//! repository's top-level `tests/` directory and the `examples/` programs
//! (see the `[[test]]` / `[[example]]` entries in this crate's `Cargo.toml`).
//!
//! Besides the target entries, the crate provides [`prop`], a minimal
//! dependency-free property-testing helper used by `tests/properties.rs` in
//! place of `proptest` (the build environment is offline): seeded case
//! generation with shrink-free failure reporting, and [`corpus`], the seeded
//! random textual-query generator shared by the parser round-trip suite and
//! the concurrency differential test.

#![warn(missing_docs)]

pub mod corpus {
    //! The seeded textual-query corpus: random well-formed ECRPQ texts over
    //! the alphabet `{a, b, c}`, used by `tests/parser_roundtrip.rs` (parse →
    //! Display → parse identity, fuzz smoke) and `tests/concurrency.rs`
    //! (multi-threaded evaluation against a single-threaded reference).

    use crate::prop::Gen;
    use ecrpq_automata::Alphabet;

    /// The alphabet every corpus query is written over.
    pub fn alphabet() -> Alphabet {
        Alphabet::from_labels(["a", "b", "c"])
    }

    const LANGS: [&str; 6] = ["a*", "(a|b)*", "a (a|b)*", "(a|b|c)* c", "a+ b*", ". .*"];
    const REL_NAMES: [&str; 7] = ["eq", "el", "prefix", "len_lt", "len_le", "hamming_le_1", "true"];
    const REL_REGEXES: [&str; 3] = ["(<a,a>|<b,b>)*", "<a,b>+", "<.,.>* <_,c>*"];

    /// Generates a random textual query: 1–3 atoms in a chain, a random mix
    /// of language atoms, relation atoms (named and regex), linear
    /// constraints, and node-constant bindings, with a random head.
    pub fn random_query_text(g: &mut Gen) -> String {
        let num_atoms = g.range(1, 3);
        let mut clauses: Vec<String> = Vec::new();
        let mut path_vars: Vec<String> = Vec::new();
        for i in 0..num_atoms {
            let p = format!("p{i}");
            clauses.push(format!("(x{i}, {p}, x{})", i + 1));
            path_vars.push(p);
        }
        // language atoms
        for p in &path_vars {
            if g.index(2) == 0 {
                clauses.push(format!("L({p}) = {}", LANGS[g.index(LANGS.len())]));
            }
        }
        // a relation atom over two paths (repeat the path var when only one)
        if g.index(2) == 0 {
            let p1 = &path_vars[g.index(path_vars.len())];
            let p2 = &path_vars[g.index(path_vars.len())];
            if g.index(2) == 0 {
                clauses.push(format!("R({p1}, {p2}) = {}", REL_NAMES[g.index(REL_NAMES.len())]));
            } else {
                clauses
                    .push(format!("R({p1}, {p2}) = {}", REL_REGEXES[g.index(REL_REGEXES.len())]));
            }
        }
        // linear constraints
        if g.index(2) == 0 {
            let p = &path_vars[g.index(path_vars.len())];
            let ops = [">=", "<=", "="];
            match g.index(3) {
                0 => clauses.push(format!("len({p}) {} {}", ops[g.index(3)], g.range(0, 5))),
                1 => clauses.push(format!(
                    "{}*count(a, {p}) {} {}",
                    g.range(2, 4),
                    ops[g.index(3)],
                    g.range(0, 5)
                )),
                _ => {
                    let q = &path_vars[g.index(path_vars.len())];
                    clauses.push(format!("len({p}) - len({q}) >= {}", g.range(0, 3)));
                }
            }
        }
        // a binding
        if g.index(3) == 0 {
            clauses.push(format!("x0 = :node{}", g.index(4)));
        }
        // head: random subset of node vars and path vars
        let mut head: Vec<String> = Vec::new();
        for i in 0..=num_atoms {
            if g.index(3) == 0 {
                head.push(format!("x{i}"));
            }
        }
        for p in &path_vars {
            if g.index(4) == 0 {
                head.push(p.clone());
            }
        }
        format!("Ans({}) <- {}", head.join(", "), clauses.join(", "))
    }

    /// Generates a random *constant-free* query text (no `:node` bindings),
    /// so evaluation needs no particular named graph nodes.
    pub fn random_constant_free_query_text(g: &mut Gen) -> String {
        loop {
            let text = random_query_text(g);
            if !text.contains(" = :") {
                return text;
            }
        }
    }
}

pub mod prop {
    //! Seeded random-case generation for property tests.
    //!
    //! [`check`] runs a property closure over `cases` deterministic inputs
    //! derived from a base seed. On failure it reports the failing case index
    //! and its per-case seed — there is no shrinking, but re-running a single
    //! case is cheap: `Gen::new(reported_seed)` reproduces it exactly.

    use ecrpq_graph::prng::SplitMix64;

    /// A deterministic source of random test data for one property case.
    pub struct Gen {
        rng: SplitMix64,
    }

    impl Gen {
        /// Creates a generator from a case seed.
        pub fn new(seed: u64) -> Self {
            Gen { rng: SplitMix64::seed_from_u64(seed) }
        }

        /// A uniform index in `0..bound` (`bound` must be nonzero).
        pub fn index(&mut self, bound: usize) -> usize {
            self.rng.gen_index(bound)
        }

        /// A uniform length in `0..=max`.
        pub fn len(&mut self, max: usize) -> usize {
            self.rng.gen_index(max + 1)
        }

        /// A uniform value in `lo..=hi`.
        pub fn range(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo <= hi);
            lo + self.rng.gen_index(hi - lo + 1)
        }

        /// Raw pseudorandom bits.
        pub fn u64(&mut self) -> u64 {
            self.rng.next_u64()
        }
    }

    /// Runs `property` over `cases` deterministic cases derived from
    /// `base_seed`. Panics (re-raising the property's panic) after printing
    /// the failing case index and its seed.
    pub fn check<F>(cases: usize, base_seed: u64, mut property: F)
    where
        F: FnMut(&mut Gen),
    {
        for case in 0..cases {
            // decorrelate case seeds through the same avalanche as the PRNG
            let case_seed =
                SplitMix64::seed_from_u64(base_seed.wrapping_add(case as u64)).next_u64();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut gen = Gen::new(case_seed);
                property(&mut gen);
            }));
            if let Err(panic) = result {
                eprintln!(
                    "property failed at case {case}/{cases} (case seed {case_seed:#x}); \
                     reproduce with prop::Gen::new({case_seed:#x})"
                );
                std::panic::resume_unwind(panic);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn check_is_deterministic() {
            let mut first: Vec<u64> = Vec::new();
            check(5, 42, |g| first.push(g.u64()));
            let mut second: Vec<u64> = Vec::new();
            check(5, 42, |g| second.push(g.u64()));
            assert_eq!(first, second);
        }

        #[test]
        fn gen_ranges_are_in_bounds() {
            check(20, 7, |g| {
                assert!(g.index(3) < 3);
                assert!(g.len(4) <= 4);
                let r = g.range(2, 5);
                assert!((2..=5).contains(&r));
            });
        }

        #[test]
        #[should_panic(expected = "property violated")]
        fn failures_propagate() {
            check(10, 1, |g| {
                let x = g.index(100);
                assert!(x < 101, "always true");
                if x > 10 {
                    panic!("property violated");
                }
            });
        }
    }
}
