//! Pattern matching (Sections 1 and 4 of the paper): compiling patterns with
//! repeated variables (squares `XX`, `aXbX`) into ECRPQs, and the
//! `a^n b^n (c^n)` queries that separate ECRPQs from CRPQs.
//!
//! Run with `cargo run --example pattern_matching`.

use ecrpq::expressiveness::{
    anbn_query, anbncn_query, parse_pattern, pattern_to_ecrpq, StringsOracle,
};
use ecrpq::prelude::*;

fn main() -> Result<(), QueryError> {
    let alphabet = Alphabet::from_labels(["a", "b", "c"]);

    // ------------------------------------------------------------- squares
    // The introduction's query: nodes connected by a path whose label is a
    // squared string w·w, i.e. the pattern XX.
    let squares = pattern_to_ecrpq(&parse_pattern("XX"), &alphabet)?;
    println!("pattern XX compiles to: {squares}");
    let oracle = StringsOracle::new(&squares)?;
    for word in
        [vec!["a", "b", "a", "b"], vec!["a", "a"], vec!["a", "b", "b", "a"], vec!["a", "b", "a"]]
    {
        println!("  {:?} is a square: {}", word, oracle.contains(&word)?);
    }

    // --------------------------------------------------------------- aXbX
    let axbx = pattern_to_ecrpq(&parse_pattern("aXbX"), &alphabet)?;
    let oracle = StringsOracle::new(&axbx)?;
    println!("\npattern aXbX:");
    for word in [vec!["a", "c", "b", "c"], vec!["a", "a", "b", "b"]] {
        println!("  {:?} matches: {}", word, oracle.contains(&word)?);
    }

    // ------------------------------------------------- a^n b^n and a^n b^n c^n
    // Proposition 3.2: this ECRPQ is not expressible as a CRPQ because its
    // strings set {a^m b^m} is not regular.
    let anbn = anbn_query(&alphabet)?;
    let oracle = StringsOracle::new(&anbn)?;
    println!("\na^n b^n membership over string graphs:");
    for word in [vec!["a", "b"], vec!["a", "a", "b", "b"], vec!["a", "a", "b"], vec!["b", "a"]] {
        println!("  {:?}: {}", word, oracle.contains(&word)?);
    }

    let anbncn = anbncn_query(&alphabet)?;
    let oracle = StringsOracle::new(&anbncn)?;
    println!("\na^n b^n c^n membership (not even context-free):");
    for word in
        [vec!["a", "b", "c"], vec!["a", "a", "b", "b", "c", "c"], vec!["a", "a", "b", "c", "c"]]
    {
        println!("  {:?}: {}", word, oracle.contains(&word)?);
    }

    // -------------------------------------------- patterns on a larger graph
    // Squares found inside a random graph (not just string graphs). The
    // compiled pattern query round-trips through the textual syntax: its
    // `Display` output is valid parser input.
    let g = generators::random_graph(12, 1.5, &["a", "b"], 7);
    let compiled = pattern_to_ecrpq(&parse_pattern("XX"), g.alphabet())?;
    let squares_ab = parse_query(&compiled.to_string(), g.alphabet())
        .map_err(|e| QueryError::Regex(e.to_string()))?;
    println!("\nsquares query, reparsed from its own Display: {squares_ab}");
    let answers = eval::eval_nodes(&squares_ab, &g, &EvalConfig::default())?;
    println!("node pairs of a random 12-node graph connected by a squared path: {}", answers.len());
    Ok(())
}
