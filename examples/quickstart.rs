//! Quickstart: building a graph, asking CRPQ and ECRPQ queries in the
//! textual query language, and reading back node and path answers — plus the
//! prepare-once/run-many pipeline.
//!
//! Run with `cargo run --example quickstart`.

use ecrpq::prelude::*;

fn main() -> Result<(), QueryError> {
    // ----------------------------------------------------------------- graph
    // The introduction's academic-genealogy example: a single edge label
    // `advisor` from each student to their advisor.
    let mut g = GraphDb::empty();
    let people = ["ada", "grace", "alan", "kurt", "alonzo", "david"];
    for p in people {
        g.add_named_node(p);
    }
    for (student, advisor) in [
        ("ada", "alan"),
        ("grace", "kurt"),
        ("alan", "alonzo"),
        ("kurt", "alonzo"),
        ("alonzo", "david"),
    ] {
        let s = g.add_named_node(student);
        let a = g.add_named_node(advisor);
        g.add_edge_labeled(s, "advisor", a);
    }
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    let alphabet = g.alphabet().clone();
    let config = EvalConfig::default();

    // ------------------------------------------------------------------ CRPQ
    // "Who are the academic ancestors of ada?" — a plain regular path query,
    // written in the textual syntax.
    let ancestors = parse_query("Ans(y) <- (x, p, y), L(p) = advisor+, x = :ada", &alphabet)?;
    let answers = eval::eval_nodes(&ancestors, &g, &config)?;
    let mut names: Vec<&str> = answers.iter().map(|a| g.node_name(a[0]).unwrap()).collect();
    names.sort();
    println!("ancestors of ada: {names:?}");

    // ----------------------------------------------------------------- ECRPQ
    // "Pairs of people with same-length advisor chains to a common ancestor" —
    // requires the equal-length relation `el`, beyond CRPQ power.
    let same_generation = parse_query(
        "Ans(x, y) <- (x, p1, z), (y, p2, z), L(p1) = advisor+, L(p2) = advisor+, \
         R(p1, p2) = el",
        &alphabet,
    )?;
    println!("query: {same_generation}");
    let answers = eval::eval_nodes(&same_generation, &g, &config)?;
    let mut pairs: Vec<(String, String)> = answers
        .iter()
        .filter(|a| a[0] != a[1])
        .map(|a| (g.node_display(a[0]), g.node_display(a[1])))
        .collect();
    pairs.sort();
    println!("same-generation pairs: {pairs:?}");

    // ------------------------------------------------------------ path output
    // ECRPQs can also return the witness paths themselves. `p1` appears as a
    // path variable in the body, so `Ans(x, p1)` outputs node + path.
    let witnesses =
        parse_query("Ans(x, p1) <- (x, p1, z), L(p1) = advisor advisor+, z = :david", &alphabet)?;
    for answer in eval::eval_with_paths(&witnesses, &g, &config)? {
        println!(
            "chain of length ≥ 2 from {} to david: {}",
            g.node_display(answer.nodes[0]),
            answer.paths[0].display(&g)
        );
    }

    // -------------------------------------------- prepare once, run many
    // `prepare` compiles the query independently of any graph; `bind` is a
    // cheap per-graph step. Re-running on another graph reuses every
    // compiled automaton (the stats prove it: zero cache misses on reuse).
    let prepared = PreparedQuery::prepare(&same_generation)?;
    let (answers1, stats1) = prepared.bind(&g)?.run_nodes(&config)?;
    let mut g2 = GraphDb::empty();
    for (student, advisor) in [("x", "y"), ("y", "z"), ("w", "z")] {
        let s = g2.add_named_node(student);
        let a = g2.add_named_node(advisor);
        g2.add_edge_labeled(s, "advisor", a);
    }
    let (answers2, stats2) = prepared.bind(&g2)?.run_nodes(&config)?;
    println!(
        "\nprepared query over two graphs: {} and {} answers; \
         first run compiled {} automata, reuse compiled {} (cache hits: {})",
        answers1.len(),
        answers2.len(),
        stats1.sim_cache_misses,
        stats2.sim_cache_misses,
        stats2.sim_cache_hits,
    );

    // -------------------------------------------------------- answer automata
    // When there are infinitely many answer paths, the full set is returned
    // as an automaton (Proposition 5.2 of the paper).
    let ada = g.node_by_name("ada").unwrap();
    let automaton = eval::answers::answer_automaton(&witnesses, &g, &[ada], &config)?;
    println!(
        "answer automaton for ada: {} states, empty = {}",
        automaton.num_states(),
        automaton.is_empty()
    );
    Ok(())
}
