//! Quickstart: building a graph, asking CRPQ and ECRPQ queries, and reading
//! back node and path answers.
//!
//! Run with `cargo run --example quickstart`.

use ecrpq::prelude::*;

fn main() -> Result<(), QueryError> {
    // ----------------------------------------------------------------- graph
    // The introduction's academic-genealogy example: a single edge label
    // `advisor` from each student to their advisor.
    let mut g = GraphDb::empty();
    let people = ["ada", "grace", "alan", "kurt", "alonzo", "david"];
    for p in people {
        g.add_named_node(p);
    }
    for (student, advisor) in [
        ("ada", "alan"),
        ("grace", "kurt"),
        ("alan", "alonzo"),
        ("kurt", "alonzo"),
        ("alonzo", "david"),
    ] {
        let s = g.add_named_node(student);
        let a = g.add_named_node(advisor);
        g.add_edge_labeled(s, "advisor", a);
    }
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    let alphabet = g.alphabet().clone();
    let config = EvalConfig::default();

    // ------------------------------------------------------------------ CRPQ
    // "Who are the academic ancestors of ada?" — a plain regular path query.
    let ancestors = Ecrpq::builder(&alphabet)
        .head_nodes(&["y"])
        .atom("x", "p", "y")
        .language("p", "advisor+")
        .bind_node("x", "ada")
        .build()?;
    let answers = eval::eval_nodes(&ancestors, &g, &config)?;
    let mut names: Vec<&str> = answers.iter().map(|a| g.node_name(a[0]).unwrap()).collect();
    names.sort();
    println!("ancestors of ada: {names:?}");

    // ----------------------------------------------------------------- ECRPQ
    // "Pairs of people with same-length advisor chains to a common ancestor" —
    // requires the equal-length relation `el`, beyond CRPQ power.
    let same_generation = Ecrpq::builder(&alphabet)
        .head_nodes(&["x", "y"])
        .atom("x", "p1", "z")
        .atom("y", "p2", "z")
        .language("p1", "advisor+")
        .language("p2", "advisor+")
        .relation(builtin::equal_length(&alphabet), &["p1", "p2"])
        .build()?;
    println!("query: {same_generation}");
    let answers = eval::eval_nodes(&same_generation, &g, &config)?;
    let mut pairs: Vec<(String, String)> = answers
        .iter()
        .filter(|a| a[0] != a[1])
        .map(|a| (g.node_display(a[0]), g.node_display(a[1])))
        .collect();
    pairs.sort();
    println!("same-generation pairs: {pairs:?}");

    // ------------------------------------------------------------ path output
    // ECRPQs can also return the witness paths themselves.
    let witnesses = Ecrpq::builder(&alphabet)
        .head_nodes(&["x"])
        .head_paths(&["p1"])
        .atom("x", "p1", "z")
        .language("p1", "advisor advisor+")
        .bind_node("z", "david")
        .build()?;
    for answer in eval::eval_with_paths(&witnesses, &g, &config)? {
        println!(
            "chain of length ≥ 2 from {} to david: {}",
            g.node_display(answer.nodes[0]),
            answer.paths[0].display(&g)
        );
    }

    // -------------------------------------------------------- answer automata
    // When there are infinitely many answer paths, the full set is returned
    // as an automaton (Proposition 5.2 of the paper).
    let ada = g.node_by_name("ada").unwrap();
    let automaton = eval::answers::answer_automaton(&witnesses, &g, &[ada], &config)?;
    println!(
        "answer automaton for ada: {} states, empty = {}",
        automaton.num_states(),
        automaton.is_empty()
    );
    Ok(())
}
