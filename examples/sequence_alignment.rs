//! Approximate matching and sequence alignment (Section 4 of the paper):
//! deciding whether two DNA sequences are within edit distance k using the
//! regular relation `D≤k` (the textual built-in `edit_le_<k>`), and
//! extracting an alignment's mismatch/gap positions with an ECRPQ whose head
//! contains path variables.
//!
//! Run with `cargo run --example sequence_alignment`.

use ecrpq::prelude::*;
use ecrpq_automata::builtin::levenshtein;
use ecrpq_graph::generators::sequence_pair_graph;

fn main() -> Result<(), QueryError> {
    // -------------------------------------------------- edit-distance checks
    // Two short DNA reads differing by one substitution and one deletion.
    let seq1 = ["A", "C", "G", "T", "A", "C"];
    let seq2 = ["A", "C", "C", "T", "A"];
    let workload = sequence_pair_graph(&seq1, &seq2, false);
    let g = &workload.graph;
    let alphabet = g.alphabet().clone();
    println!("sequence graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    let config = EvalConfig::default();

    // Reference value for comparison.
    let w1: Vec<Symbol> = seq1.iter().map(|l| alphabet.sym(l)).collect();
    let w2: Vec<Symbol> = seq2.iter().map(|l| alphabet.sym(l)).collect();
    println!("Levenshtein distance (dynamic programming): {}", levenshtein(&w1, &w2));

    // ECRPQ check: are the two sequences within edit distance k? The reads
    // are at distance 2, so the sweep crosses from "no" to "yes" at k = 2.
    // (k = 3 works too but its relation automaton makes a debug-profile run
    // take a minute — keep the demo snappy.)
    for k in 0..=2 {
        let q = parse_query(
            &format!(
                "Ans() <- (x1, p1, y1), (x2, p2, y2), R(p1, p2) = edit_le_{k}, \
                 x1 = :s0, y1 = :s{}, x2 = :t0, y2 = :t{}",
                seq1.len(),
                seq2.len()
            ),
            &alphabet,
        )?;
        let within = eval::eval_boolean(&q, g, &config)?;
        println!("edit distance ≤ {k}?  {within}");
    }

    // ----------------------------------------------- alignment with k = 1
    // The Section 4 construction: add ε-loops, write each sequence as
    // x0 a1 x1 / y0 b1 y1 with x_i = y_i and (a1, b1) a mismatch or gap, and
    // return the mismatch paths. Here: one substitution between ACGT and ACCT.
    let seq1 = ["A", "C", "G", "T"];
    let seq2 = ["A", "C", "C", "T"];
    let workload = sequence_pair_graph(&seq1, &seq2, true);
    let g = &workload.graph;
    let alphabet = g.alphabet().clone();
    // mismatch relation: single letters (incl. the ε marker) that differ,
    // written as a tuple-letter regex directly in the query text.
    let letters = ["A", "C", "G", "T", "eps"];
    let mut mismatch_expr = String::new();
    for a in letters {
        for b in letters {
            if a != b {
                if !mismatch_expr.is_empty() {
                    mismatch_expr.push('|');
                }
                mismatch_expr.push_str(&format!("<{a},{b}>"));
            }
        }
    }

    let q = parse_query(
        &format!(
            "Ans(a1, b1) <- (x0, m0, x1), (x1, a1, x2), (x2, m1, x3), \
             (y0, n0, y1), (y1, b1, y2), (y2, n1, y3), \
             R(m0, n0) = eq, R(m1, n1) = eq, R(a1, b1) = {mismatch_expr}, \
             x0 = :s0, x3 = :s{}, y0 = :t0, y3 = :t{}",
            seq1.len(),
            seq2.len()
        ),
        &alphabet,
    )?;
    let answers = eval::eval_with_paths(&q, g, &EvalConfig { answer_limit: 3, ..config })?;
    println!("\nalignments of ACGT vs ACCT at distance 1 (up to 3 witnesses):");
    for answer in &answers {
        println!(
            "  mismatch/gap: {}   vs   {}",
            answer.paths[0].display(g),
            answer.paths[1].display(g)
        );
    }
    if answers.is_empty() {
        println!("  (none)");
    }
    Ok(())
}
