//! Semantic-web associations (Section 4 of the paper): ρ-isomorphic property
//! sequences over an RDF-style graph with a subproperty hierarchy, and
//! ρ-queries that return the witnessing property sequences.
//!
//! Run with `cargo run --example semantic_web`.

use ecrpq::prelude::*;
use ecrpq_automata::builtin::rho_isomorphism;

fn main() -> Result<(), QueryError> {
    // An RDF-style graph. Properties: `authored ≺ contributedTo`,
    // `advised ≺ influenced`.
    let mut g = GraphDb::empty();
    let triples = [
        ("turing", "authored", "computability_paper"),
        ("church", "contributedTo", "computability_paper"),
        ("church", "advised", "turing"),
        ("hilbert", "influenced", "church"),
        ("hilbert", "influenced", "turing"),
        ("goedel", "authored", "incompleteness_paper"),
        ("vonneumann", "contributedTo", "incompleteness_paper"),
        ("hilbert", "advised", "vonneumann"),
        ("brouwer", "influenced", "goedel"),
    ];
    for (s, p, o) in triples {
        let sn = g.add_named_node(s);
        let on = g.add_named_node(o);
        g.add_edge_labeled(sn, p, on);
    }
    let alphabet = g.alphabet().clone();
    let subproperties = vec![
        (alphabet.sym("authored"), alphabet.sym("contributedTo")),
        (alphabet.sym("advised"), alphabet.sym("influenced")),
    ];
    println!("RDF-style graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // The ρ-isomorphism relation: equal-length property sequences whose i-th
    // properties are subproperties of one another (here also reflexively).
    let rho = rho_isomorphism(&alphabet, &subproperties, true);
    let config = EvalConfig::default();

    // ρ-isoAssociated pairs: Ans(x, y) ← (x, π1, z1), (y, π2, z2), R(π1, π2)
    // restricted to non-empty sequences.
    let associated = Ecrpq::builder(&alphabet)
        .head_nodes(&["x", "y"])
        .atom("x", "p1", "z1")
        .atom("y", "p2", "z2")
        .language("p1", ". .*")
        .language("p2", ". .*")
        .relation(rho.clone(), &["p1", "p2"])
        .build()?;
    let answers = eval::eval_nodes(&associated, &g, &config)?;
    let mut pairs: Vec<(String, String)> = answers
        .iter()
        .filter(|a| a[0] < a[1])
        .map(|a| (g.node_display(a[0]), g.node_display(a[1])))
        .collect();
    pairs.sort();
    println!("ρ-isoAssociated pairs ({}):", pairs.len());
    for (x, y) in pairs.iter().take(12) {
        println!("  {x} ~ {y}");
    }

    // A ρ-query: fix the two origins and return the witnessing property
    // sequences themselves (paths in the head).
    let rho_query = Ecrpq::builder(&alphabet)
        .head_paths(&["p1", "p2"])
        .atom("u", "p1", "z1")
        .atom("v", "p2", "z2")
        .language("p1", ". .*")
        .language("p2", ". .*")
        .relation(rho, &["p1", "p2"])
        .bind_node("u", "turing")
        .bind_node("v", "church")
        .build()?;
    println!("\nwitness property sequences for (turing, church):");
    for answer in eval::eval_with_paths(&rho_query, &g, &config)?.iter().take(6) {
        println!("  π1: {}", answer.paths[0].display(&g));
        println!("  π2: {}", answer.paths[1].display(&g));
        println!();
    }
    Ok(())
}
