//! Semantic-web associations (Section 4 of the paper): ρ-isomorphic property
//! sequences over an RDF-style graph with a subproperty hierarchy, and
//! ρ-queries that return the witnessing property sequences.
//!
//! The queries are textual; the ρ-isomorphism relation (built from the
//! subproperty table, so not expressible as a regex) is supplied to the
//! parser through the relation registry of [`parse_query_with`].
//!
//! Run with `cargo run --example semantic_web`.

use ecrpq::prelude::*;
use ecrpq_automata::builtin::rho_isomorphism;

fn main() -> Result<(), QueryError> {
    // An RDF-style graph. Properties: `authored ≺ contributedTo`,
    // `advised ≺ influenced`.
    let mut g = GraphDb::empty();
    let triples = [
        ("turing", "authored", "computability_paper"),
        ("church", "contributedTo", "computability_paper"),
        ("church", "advised", "turing"),
        ("hilbert", "influenced", "church"),
        ("hilbert", "influenced", "turing"),
        ("goedel", "authored", "incompleteness_paper"),
        ("vonneumann", "contributedTo", "incompleteness_paper"),
        ("hilbert", "advised", "vonneumann"),
        ("brouwer", "influenced", "goedel"),
    ];
    for (s, p, o) in triples {
        let sn = g.add_named_node(s);
        let on = g.add_named_node(o);
        g.add_edge_labeled(sn, p, on);
    }
    let alphabet = g.alphabet().clone();
    let subproperties = vec![
        (alphabet.sym("authored"), alphabet.sym("contributedTo")),
        (alphabet.sym("advised"), alphabet.sym("influenced")),
    ];
    println!("RDF-style graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // The ρ-isomorphism relation: equal-length property sequences whose i-th
    // properties are subproperties of one another (here also reflexively).
    // Registered under its name so textual queries can refer to it.
    let rho = rho_isomorphism(&alphabet, &subproperties, true);
    let registry = [("rho_iso", rho)];
    let config = EvalConfig::default();

    // ρ-isoAssociated pairs: Ans(x, y) ← (x, π1, z1), (y, π2, z2), R(π1, π2)
    // restricted to non-empty sequences.
    let associated = parse_query_with(
        "Ans(x, y) <- (x, p1, z1), (y, p2, z2), L(p1) = . .*, L(p2) = . .*, \
         R(p1, p2) = rho_iso",
        &alphabet,
        &registry,
    )?;
    println!("query: {associated}");
    let answers = eval::eval_nodes(&associated, &g, &config)?;
    let mut pairs: Vec<(String, String)> = answers
        .iter()
        .filter(|a| a[0] < a[1])
        .map(|a| (g.node_display(a[0]), g.node_display(a[1])))
        .collect();
    pairs.sort();
    println!("ρ-isoAssociated pairs ({}):", pairs.len());
    for (x, y) in pairs.iter().take(12) {
        println!("  {x} ~ {y}");
    }

    // A ρ-query: fix the two origins and return the witnessing property
    // sequences themselves (paths in the head).
    let rho_query = parse_query_with(
        "Ans(p1, p2) <- (u, p1, z1), (v, p2, z2), L(p1) = . .*, L(p2) = . .*, \
         R(p1, p2) = rho_iso, u = :turing, v = :church",
        &alphabet,
        &registry,
    )?;
    println!("\nwitness property sequences for (turing, church):");
    for answer in eval::eval_with_paths(&rho_query, &g, &config)?.iter().take(6) {
        println!("  π1: {}", answer.paths[0].display(&g));
        println!("  π2: {}", answer.paths[1].display(&g));
        println!();
    }
    Ok(())
}
