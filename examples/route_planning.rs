//! Route finding with linear constraints (Section 8.2 of the paper): the
//! "at least 80% of the journey with one airline" itinerary query, plus
//! length-bounded routing, over a synthetic flight network — all written in
//! the textual query language (`len(p)` / `count(label, p)` constraints).
//!
//! Run with `cargo run --example route_planning`.

use ecrpq::prelude::*;
use ecrpq_graph::generators::flight_network;

fn main() -> Result<(), QueryError> {
    // A flight network: 6 cities, three airlines, each flight split into 3
    // segments labeled with the operating airline (so label counts measure
    // journey time, as suggested in the paper).
    let g = flight_network(6, &["SQ", "BA", "QF"], 24, 3, 2024);
    let alphabet = g.alphabet().clone();
    println!("flight network: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // Routes longer than 8 flights (24 segments) are not interesting, so cap
    // the convolution search there; this also keeps the counter state space
    // small (see EvalConfig::max_convolution_steps).
    let config = EvalConfig { max_convolution_steps: Some(24), ..EvalConfig::default() };
    let origin = "city0";
    let destination = "city4";

    // Plain reachability first: is there any itinerary at all?
    let any_route =
        parse_query(&format!("Ans() <- (x, p, y), x = :{origin}, y = :{destination}"), &alphabet)?;
    println!(
        "\nany itinerary {origin} → {destination}? {}",
        eval::eval_boolean(&any_route, &g, &config)?
    );

    // The paper's query: at least `percent`% of the journey with Singapore
    // Airlines — `100·#SQ(p) − percent·|p| ≥ 0` in the textual syntax.
    for percent in [50, 80, 100] {
        let q = parse_query(
            &format!(
                "Ans() <- (x, p, y), 100*count(SQ, p) - {percent}*len(p) >= 0, \
                 x = :{origin}, y = :{destination}"
            ),
            &alphabet,
        )?;
        println!(
            "itinerary with ≥ {percent}% SQ segments? {}",
            eval::eval_boolean(&q, &g, &config)?
        );
    }

    // Length-bounded routing: a route of at most 9 segments (3 flights),
    // with the witness path in the head.
    let with_len = parse_query(
        &format!("Ans(p) <- (x, p, y), len(p) <= 9, x = :{origin}, y = :{destination}"),
        &alphabet,
    )?;
    let answers =
        eval::eval_with_paths(&with_len, &g, &EvalConfig { answer_limit: 1, ..config.clone() })?;
    match answers.first() {
        Some(a) => println!(
            "\na route with ≤ 9 segments ({} segments): {}",
            a.paths[0].len(),
            a.paths[0].display(&g)
        ),
        None => println!("\nno route with ≤ 9 segments"),
    }

    // Avoiding an airline entirely: zero BA segments.
    let no_ba = parse_query(
        &format!("Ans() <- (x, p, y), count(BA, p) <= 0, x = :{origin}, y = :{destination}"),
        &alphabet,
    )?;
    println!("itinerary avoiding BA entirely? {}", eval::eval_boolean(&no_ba, &g, &config)?);
    Ok(())
}
