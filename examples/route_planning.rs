//! Route finding with linear constraints (Section 8.2 of the paper): the
//! "at least 80% of the journey with one airline" itinerary query, plus
//! length-bounded routing, over a synthetic flight network.
//!
//! Run with `cargo run --example route_planning`.

use ecrpq::eval::counts::{fraction_at_least, label_count, length};
use ecrpq::prelude::*;
use ecrpq_automata::semilinear::CmpOp;
use ecrpq_graph::generators::flight_network;

fn main() -> Result<(), QueryError> {
    // A flight network: 8 cities, three airlines, each flight split into 3
    // segments labeled with the operating airline (so label counts measure
    // journey time, as suggested in the paper).
    let g = flight_network(6, &["SQ", "BA", "QF"], 24, 3, 2024);
    let alphabet = g.alphabet().clone();
    println!("flight network: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // Routes longer than 8 flights (24 segments) are not interesting, so cap
    // the convolution search there; this also keeps the counter state space
    // small (see EvalConfig::max_convolution_steps).
    let config = EvalConfig { max_convolution_steps: Some(24), ..EvalConfig::default() };
    let origin = "city0";
    let destination = "city4";

    // Plain reachability first: is there any itinerary at all?
    let any_route = Ecrpq::builder(&alphabet)
        .atom("x", "p", "y")
        .bind_node("x", origin)
        .bind_node("y", destination)
        .build()?;
    println!(
        "\nany itinerary {origin} → {destination}? {}",
        eval::eval_boolean(&any_route, &g, &config)?
    );

    // The paper's query: at least 80% of the journey with Singapore Airlines.
    for percent in [50, 80, 100] {
        let c = fraction_at_least("p", "SQ", percent);
        let q = Ecrpq::builder(&alphabet)
            .atom("x", "p", "y")
            .bind_node("x", origin)
            .bind_node("y", destination)
            .linear_constraint(c.terms.clone(), c.op, c.constant)
            .build()?;
        println!(
            "itinerary with ≥ {percent}% SQ segments? {}",
            eval::eval_boolean(&q, &g, &config)?
        );
    }

    // Length-bounded routing: a route of at most 9 segments (3 flights).
    let short = length("p", CmpOp::Le, 9);
    let with_len = Ecrpq::builder(&alphabet)
        .head_paths(&["p"])
        .atom("x", "p", "y")
        .bind_node("x", origin)
        .bind_node("y", destination)
        .linear_constraint(short.terms.clone(), short.op, short.constant)
        .build()?;
    let answers =
        eval::eval_with_paths(&with_len, &g, &EvalConfig { answer_limit: 1, ..config.clone() })?;
    match answers.first() {
        Some(a) => println!(
            "\na route with ≤ 9 segments ({} segments): {}",
            a.paths[0].len(),
            a.paths[0].display(&g)
        ),
        None => println!("\nno route with ≤ 9 segments"),
    }

    // Avoiding an airline entirely: zero BA segments.
    let no_ba = label_count("p", "BA", CmpOp::Le, 0);
    let q = Ecrpq::builder(&alphabet)
        .atom("x", "p", "y")
        .bind_node("x", origin)
        .bind_node("y", destination)
        .linear_constraint(no_ba.terms.clone(), no_ba.op, no_ba.constant)
        .build()?;
    println!("itinerary avoiding BA entirely? {}", eval::eval_boolean(&q, &g, &config)?);
    Ok(())
}
