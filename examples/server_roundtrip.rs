//! Serving queries over TCP: spawn the query server in-process, load a
//! generated graph into its catalog, register a prepared statement, and
//! round-trip runs over loopback — including the prepare-once-run-many
//! cache behaviour across *separate* client connections.
//!
//! Run with `cargo run --example server_roundtrip`.

use ecrpq_server::client::Client;
use ecrpq_server::server::{Server, ServerConfig};
use ecrpq_util::json::Value;

fn main() {
    // An in-process server on an ephemeral loopback port. `ecrpq-serve`
    // wraps exactly this call as a standalone binary.
    let handle = Server::spawn(ServerConfig::default()).expect("spawn server");
    println!("server listening on {}", handle.addr());

    // Connection 1: load a graph and register a statement.
    let mut c1 = Client::connect(handle.addr()).expect("connect");
    let loaded = c1.load_generator("ring", "cycle:8:a").expect("load");
    println!(
        "loaded graph `ring`: {} nodes, {} edges",
        loaded.get("nodes").unwrap(),
        loaded.get("edges").unwrap()
    );
    // "Pairs two a-steps apart" — parsed and compiled once, server-side.
    c1.prepare_for_graph("two_hops", "Ans(x, y) <- (x, p, y), L(p) = a a", "ring")
        .expect("prepare");
    let first = c1.run("two_hops", "ring").expect("run");
    println!(
        "first run:  registry {} | {} answers | sim-table compilations: {}",
        first.get("registry").unwrap(),
        first.get("count").unwrap(),
        first.get("stats").unwrap().get("sim_cache_misses").unwrap()
    );
    c1.close().expect("close");

    // Connection 2: a different client reuses the same prepared statement
    // and cached bound plan — a registry hit, zero compilation.
    let mut c2 = Client::connect(handle.addr()).expect("connect again");
    let second = c2.run("two_hops", "ring").expect("run again");
    let registry = second.get("registry").and_then(Value::as_str).unwrap();
    let misses =
        second.get("stats").unwrap().get("sim_cache_misses").and_then(Value::as_u64).unwrap();
    println!(
        "second run: registry {registry} | {} answers | sim-table compilations: {misses}",
        second.get("count").unwrap()
    );
    assert_eq!(registry, "hit", "second run must reuse the cached bound plan");
    assert_eq!(misses, 0, "second run must not compile anything");
    assert_eq!(first.get("answers"), second.get("answers"));

    let stats = c2.stats().expect("stats");
    println!(
        "server stats: graphs={} statements={} registry={}",
        stats.get("graphs").unwrap(),
        stats.get("statements").unwrap(),
        stats.get("registry").unwrap()
    );
    c2.close().expect("close");

    handle.shutdown();
    println!("server drained and stopped");
}
