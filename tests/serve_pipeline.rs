//! Integration suite for the pipelined serve path: tagged out-of-order
//! completion, interleaved `batch` and single ops, a 256-connection soak
//! with exactly-once delivery checked bit-for-bit against sequential
//! execution, and the protocol error goldens of the pipelining surface.
//!
//! Everything here drives a real in-process [`Server`] over loopback TCP —
//! the same transport `ecrpq-serve` exposes — so the connection loop's
//! dispatch, coalesced flushing, and admission control are all on the path.

use ecrpq_server::client::Client;
use ecrpq_server::server::{Server, ServerConfig, ServerHandle};
use ecrpq_util::json::Value;
use std::time::Duration;

const GRAPH: &str = "ring";
const STMT: &str = "two_hops";

/// Spawns a server with `workers` connection slots, loads a generated graph,
/// prepares one statement, and warms the bound-plan cache so every request
/// the tests issue afterwards is a registry hit.
fn spawn_prepared(workers: usize) -> ServerHandle {
    let handle =
        Server::spawn(ServerConfig { workers, exec_workers: workers, ..ServerConfig::default() })
            .expect("spawn server");
    let mut c = Client::connect(handle.addr()).expect("connect setup");
    c.load_generator(GRAPH, "cycle:8:a").expect("load graph");
    c.prepare_for_graph(STMT, "Ans(x, y) <- (x, p, y), L(p) = a a", GRAPH).expect("prepare");
    c.run_mode(STMT, GRAPH, "boolean").expect("warm run");
    c.close().expect("close setup");
    handle
}

/// The canonical boolean `run` request the suite pipelines.
fn run_req() -> Value {
    Value::obj([
        ("op", Value::str("run")),
        ("name", Value::str(STMT)),
        ("graph", Value::str(GRAPH)),
        ("mode", Value::str("boolean")),
    ])
}

/// `reply` with its `id` tag removed — the shape an untagged (sequential)
/// request would have produced, enabling bit-for-bit comparison.
fn strip_id(reply: &Value) -> Value {
    match reply {
        Value::Obj(pairs) => Value::Obj(pairs.iter().filter(|(k, _)| k != "id").cloned().collect()),
        other => other.clone(),
    }
}

#[test]
fn tagged_replies_match_by_id_whatever_their_order() {
    let handle = spawn_prepared(2);
    let mut c = Client::connect(handle.addr()).expect("connect");

    // The sequential ground truth: one untagged run of the same request.
    let expected = c.request(&run_req()).expect("sequential run");

    // A burst of 16 tagged copies — integer and string ids mixed — written
    // without waiting for any reply, then one flush.
    let req = run_req();
    let mut want: Vec<Value> = Vec::new();
    for i in 0..8u64 {
        want.push(Value::int(i));
        want.push(Value::str(format!("tag-{i}")));
    }
    for id in &want {
        c.send(&Client::tagged(&req, id)).expect("send tagged");
    }
    c.flush().expect("flush burst");

    // Replies may arrive in any order; each must carry exactly one of the
    // ids, each id exactly once, and each payload must be bit-identical to
    // the sequential reply once the tag is stripped.
    let mut seen: Vec<Value> = Vec::new();
    for _ in 0..want.len() {
        let reply = c.recv().expect("recv tagged reply");
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true), "reply: {reply}");
        let id = reply.get("id").expect("tagged reply echoes its id").clone();
        assert!(want.contains(&id), "unknown id in reply: {reply}");
        assert!(!seen.contains(&id), "duplicate reply for id {id}");
        assert_eq!(strip_id(&reply), expected, "tagged reply diverged from sequential run");
        seen.push(id);
    }
    assert_eq!(seen.len(), want.len());

    c.close().expect("close");
    handle.shutdown();
}

#[test]
fn untagged_request_is_an_ordering_barrier() {
    let handle = spawn_prepared(2);
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.request(&run_req()).expect("warm this connection");

    // Eight tagged runs followed by one untagged stats: the untagged
    // request drains all pending tagged work first, so its reply must be
    // the last of the nine on the wire.
    let req = run_req();
    for i in 0..8u64 {
        c.send(&Client::tagged(&req, &Value::int(i))).expect("send tagged");
    }
    c.send(&Value::obj([("op", Value::str("stats"))])).expect("send untagged");
    c.flush().expect("flush");

    let mut replies = Vec::new();
    for _ in 0..9 {
        replies.push(c.recv().expect("recv"));
    }
    let untagged_at =
        replies.iter().position(|r| r.get("id").is_none()).expect("the stats reply carries no id");
    assert_eq!(untagged_at, 8, "untagged barrier reply must arrive after all tagged replies");
    assert!(replies[8].get("admission").is_some(), "barrier reply is the stats reply");

    c.close().expect("close");
    handle.shutdown();
}

#[test]
fn batch_and_singles_interleave_on_one_connection() {
    let handle = spawn_prepared(2);
    let mut c = Client::connect(handle.addr()).expect("connect");
    let expected = c.request(&run_req()).expect("sequential run");

    // A tagged batch of 4 runs, a tagged single run, and an untagged single
    // run, all written in one burst.
    let batch =
        Client::tagged(&Client::batch_runs(STMT, GRAPH, "boolean", 4), &Value::str("the-batch"));
    c.send(&batch).expect("send batch");
    c.send(&Client::tagged(&run_req(), &Value::int(7))).expect("send tagged single");
    c.send(&run_req()).expect("send untagged single");
    c.flush().expect("flush");

    let mut batch_reply = None;
    let mut tagged_reply = None;
    let mut untagged_reply = None;
    for _ in 0..3 {
        let reply = c.recv().expect("recv");
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true), "reply: {reply}");
        match reply.get("id") {
            Some(Value::Str(s)) if s == "the-batch" => batch_reply = Some(reply),
            Some(v) if v.as_u64() == Some(7) => tagged_reply = Some(reply),
            None => untagged_reply = Some(reply),
            other => panic!("unexpected id {other:?} in {reply}"),
        }
    }
    let batch_reply = batch_reply.expect("batch reply arrived");
    let tagged_reply = tagged_reply.expect("tagged single reply arrived");
    let untagged_reply = untagged_reply.expect("untagged single reply arrived");

    // Every sub-result of the batch and both singles agree bit-for-bit with
    // the sequential run.
    assert_eq!(batch_reply.get("count").and_then(Value::as_u64), Some(4));
    let results = batch_reply.get("results").and_then(Value::as_arr).expect("results");
    for sub in results {
        assert_eq!(sub.get("answer"), expected.get("answer"), "batch sub diverged: {sub}");
        assert_eq!(sub.get("registry"), expected.get("registry"));
    }
    assert_eq!(strip_id(&tagged_reply), expected);
    assert_eq!(untagged_reply, expected);

    c.close().expect("close");
    handle.shutdown();
}

/// 256 connections hammer the server concurrently through the pipelined
/// path; admission capacity is far below the connection count, so clients
/// retry until admitted. Every admitted connection must receive each of its
/// tagged replies exactly once, bit-identical to sequential execution.
#[test]
fn soak_256_connections_exactly_once_bit_identical() {
    const CONNS: usize = 256;
    const REQUESTS: usize = 8;
    let handle = spawn_prepared(32);
    let addr = handle.addr();

    let expected = {
        let mut c = Client::connect(addr).expect("connect reference");
        let e = c.request(&run_req()).expect("sequential reference run");
        c.close().expect("close reference");
        e
    };

    let threads: Vec<_> = (0..CONNS)
        .map(|_| {
            let expected = expected.clone();
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn(move || {
                    // Retry until admitted: the at-capacity reply arrives as
                    // the first (untagged) line, after which the server
                    // hangs up.
                    'attempt: for _ in 0..5000 {
                        let mut c = Client::connect(addr).expect("connect soak");
                        let req = run_req();
                        for i in 0..REQUESTS as u64 {
                            c.send(&Client::tagged(&req, &Value::int(i))).expect("send");
                        }
                        c.flush().expect("flush");
                        let mut seen = [false; REQUESTS];
                        for _ in 0..REQUESTS {
                            let reply = match c.recv() {
                                Ok(r) => r,
                                // The server may close a rejected connection
                                // before all our writes land.
                                Err(_) => {
                                    std::thread::sleep(Duration::from_millis(1));
                                    continue 'attempt;
                                }
                            };
                            match reply.get("id").and_then(Value::as_u64) {
                                Some(id) => {
                                    let id = id as usize;
                                    assert!(id < REQUESTS, "stray id: {reply}");
                                    assert!(!seen[id], "duplicate reply for id {id}");
                                    seen[id] = true;
                                    assert_eq!(
                                        strip_id(&reply),
                                        expected,
                                        "soak reply diverged from sequential execution"
                                    );
                                }
                                None => {
                                    // Admission rejection: untagged, with the
                                    // documented shape.
                                    assert_eq!(
                                        reply.get("ok").and_then(Value::as_bool),
                                        Some(false)
                                    );
                                    assert!(
                                        reply.get("retry_after_hint").is_some(),
                                        "rejection carries retry_after_hint: {reply}"
                                    );
                                    std::thread::sleep(Duration::from_millis(1));
                                    continue 'attempt;
                                }
                            }
                        }
                        assert!(seen.iter().all(|&s| s), "missing replies");
                        let _ = c.close();
                        return;
                    }
                    panic!("connection was never admitted after 5000 attempts");
                })
                .expect("spawn soak thread")
        })
        .collect();
    for t in threads {
        t.join().expect("soak thread panicked");
    }

    // The service served every admitted request; rejections were counted.
    let stats = handle.service().stats.requests.load(std::sync::atomic::Ordering::SeqCst);
    assert!(stats >= (CONNS * REQUESTS) as u64, "at least one full quota per connection");
    handle.shutdown();
}

#[test]
fn protocol_error_goldens() {
    let handle = spawn_prepared(2);
    let mut c = Client::connect(handle.addr()).expect("connect");

    let golden = |c: &mut Client, line: &str, needle: &str| {
        let reply = c.request_raw(line).expect("error replies are still replies");
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false), "reply: {reply}");
        let msg = reply.get("error").and_then(Value::as_str).unwrap_or_default();
        assert!(msg.contains(needle), "error `{msg}` should mention `{needle}`");
        reply
    };

    // Malformed id tags: float, boolean, negative, array.
    let bad = golden(&mut c, r#"{"op":"stats","id":1.5}"#, "`id` must be a string");
    assert!(bad.get("id").is_none(), "malformed ids are not echoed: {bad}");
    golden(&mut c, r#"{"op":"stats","id":true}"#, "`id` must be a string");
    golden(&mut c, r#"{"op":"stats","id":-3}"#, "`id` must be a string");
    golden(&mut c, r#"{"op":"stats","id":[1]}"#, "`id` must be a string");

    // Batch shape errors: missing, empty, and oversized request arrays.
    golden(&mut c, r#"{"op":"batch"}"#, "needs a `requests` array");
    golden(&mut c, r#"{"op":"batch","requests":[]}"#, "must not be empty");
    let oversized = format!(r#"{{"op":"batch","requests":[{}]}}"#, vec!["{}"; 1025].join(","));
    golden(&mut c, &oversized, "batch too large");

    // Lifecycle ops are connection-ordered and must stay untagged.
    golden(&mut c, r#"{"op":"close","id":1}"#, "must not carry an `id` tag");
    golden(&mut c, r#"{"op":"shutdown","id":"s"}"#, "must not carry an `id` tag");

    // The connection survived every error and still serves.
    let ok = c.request(&run_req()).expect("connection still usable");
    assert_eq!(ok.get("ok").and_then(Value::as_bool), Some(true));
    c.close().expect("close");
    handle.shutdown();
}
