//! Tests for the expressiveness results of Proposition 3.2 and the pattern
//! languages of Section 4, exercised through the public API.

use ecrpq::expressiveness::{
    anbn_query, anbncn_query, parse_pattern, pattern_to_ecrpq, strings_nfa_for_single_atom,
    StringsOracle,
};
use ecrpq::prelude::*;
use ecrpq_graph::generators;

/// strings(Q) of the separating ECRPQ is {a^m b^m | m > 0}: exhaustive check
/// over all words of length ≤ 6.
#[test]
fn anbn_strings_set_is_exactly_anbn() {
    let al = Alphabet::from_labels(["a", "b"]);
    let q = anbn_query(&al).unwrap();
    let oracle = StringsOracle::new(&q).unwrap();
    let letters = ["a", "b"];
    // enumerate all non-empty words of length ≤ 6
    let mut words: Vec<Vec<&str>> = vec![vec![]];
    for _ in 0..6 {
        let mut next = Vec::new();
        for w in &words {
            for l in letters {
                let mut w2 = w.clone();
                w2.push(l);
                next.push(w2);
            }
        }
        words.extend(next.clone());
        words = words.into_iter().collect();
    }
    for w in words.iter().filter(|w| !w.is_empty()) {
        let expected = {
            let n = w.len();
            n % 2 == 0
                && w[..n / 2].iter().all(|&c| c == "a")
                && w[n / 2..].iter().all(|&c| c == "b")
        };
        assert_eq!(oracle.contains(w).unwrap(), expected, "word {w:?}");
    }
}

/// The non-regularity argument of Proposition 3.2, made concrete: for the
/// separating ECRPQ, pumping the `a` block breaks membership, whereas for any
/// single-atom CRPQ the strings NFA accepts the pumped word whenever the
/// pumping stays inside a cycle of the NFA. We verify the first half and the
/// CRPQ regularity half on examples.
#[test]
fn pumping_behaviour() {
    let al = Alphabet::from_labels(["a", "b"]);
    let q = anbn_query(&al).unwrap();
    let oracle = StringsOracle::new(&q).unwrap();
    // a^4 b^4 is accepted; pumping two extra a's breaks it.
    let balanced: Vec<&str> = ["a"; 4].iter().chain(["b"; 4].iter()).copied().collect();
    assert!(oracle.contains(&balanced).unwrap());
    let pumped: Vec<&str> = ["a"; 6].iter().chain(["b"; 4].iter()).copied().collect();
    assert!(!oracle.contains(&pumped).unwrap());

    // For a CRPQ, strings(Q) is regular: the explicit NFA agrees with the
    // oracle on a batch of words including pumped ones.
    let crpq = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p", "y")
        .language("p", "a+ b+")
        .build()
        .unwrap();
    let nfa = strings_nfa_for_single_atom(&crpq).unwrap();
    let crpq_oracle = StringsOracle::new(&crpq).unwrap();
    for w in [
        vec!["a", "b"],
        vec!["a", "a", "a", "b"],
        vec!["a", "b", "b", "b", "b"],
        vec!["b", "a"],
        vec!["a", "a"],
    ] {
        let syms: Vec<Symbol> = w.iter().map(|l| al.sym(l)).collect();
        assert_eq!(nfa.accepts(&syms), crpq_oracle.contains(&w).unwrap(), "word {w:?}");
    }
}

/// a^n b^n c^n membership checked against string graphs, including words that
/// are balanced in only two of the three blocks.
#[test]
fn anbncn_rejects_partially_balanced_words() {
    let al = Alphabet::from_labels(["a", "b", "c"]);
    let q = anbncn_query(&al).unwrap();
    let oracle = StringsOracle::new(&q).unwrap();
    assert!(oracle.contains(&["a", "b", "c"]).unwrap());
    assert!(oracle.contains(&["a", "a", "b", "b", "c", "c"]).unwrap());
    assert!(!oracle.contains(&["a", "a", "b", "b", "c"]).unwrap());
    assert!(!oracle.contains(&["a", "b", "b", "c", "c"]).unwrap());
    assert!(!oracle.contains(&["c", "b", "a"]).unwrap());
}

/// Pattern languages with several variables: aXbY requires nothing beyond
/// membership of each block, while aXbX ties the two blocks together.
#[test]
fn patterns_with_independent_and_tied_variables() {
    let al = Alphabet::from_labels(["a", "b"]);
    let tied = pattern_to_ecrpq(&parse_pattern("aXbX"), &al).unwrap();
    let free = pattern_to_ecrpq(&parse_pattern("aXbY"), &al).unwrap();
    let tied_oracle = StringsOracle::new(&tied).unwrap();
    let free_oracle = StringsOracle::new(&free).unwrap();
    // a b b a : tied would need X to be both "b" (after the leading a) and
    // "a" (the final letter) — rejected; free accepts with X = "b", Y = "a".
    let w = vec!["a", "b", "b", "a"];
    assert!(!tied_oracle.contains(&w).unwrap());
    assert!(free_oracle.contains(&w).unwrap());
    // a b b b is a tied match (X = "b") and of course a free match too.
    let w = vec!["a", "b", "b", "b"];
    assert!(tied_oracle.contains(&w).unwrap());
    assert!(free_oracle.contains(&w).unwrap());
    // a b a b a b: tied needs X with a·X·b·X; X = "b a" gives a b a b b a — no;
    // actually a·X·b·X with X = "ba" is "a b a b b a" ≠ w, and no other X fits.
    let w = vec!["a", "b", "a", "b", "a", "b"];
    assert!(!tied_oracle.contains(&w).unwrap());
    assert!(free_oracle.contains(&w).unwrap());
}

/// Patterns evaluated over general graphs (not just string graphs): squares
/// in a cycle exist because the cycle can be traversed twice.
#[test]
fn squares_on_cycles() {
    let g = generators::cycle_graph(3, "a");
    let al = g.alphabet().clone();
    let squares = pattern_to_ecrpq(&parse_pattern("XX"), &al).unwrap();
    let answers = ecrpq::eval::eval_nodes(&squares, &g, &ecrpq::EvalConfig::default()).unwrap();
    // going around the cycle twice gives a squared label from every node to itself
    for v in g.nodes() {
        assert!(answers.contains(&vec![v, v]));
    }
    // and (0, 2) via the square (a·a)(a·a)? length 4 ends at node 1, not 2 —
    // squares from 0 end at even distances: 0→0 (len 0 or 6), 0→2 (len 2), 0→1 (len 4).
    assert!(answers.contains(&vec![NodeId(0), NodeId(2)]));
    assert!(answers.contains(&vec![NodeId(0), NodeId(1)]));
}
