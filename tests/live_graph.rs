//! Differential suite for live graphs: mutation ops + incremental (delta)
//! maintenance of prepared statements.
//!
//! The live-graph layer promises that a delta-maintained answer set is
//! *bit-identical* to a cold re-run of the same statement on the merged
//! graph — same sorted head tuples, same `verified` count — and that the
//! maintained path never recompiles a constraint table after its initial
//! build (`sim_cache_misses == 0` on every refresh). This suite enforces
//! that promise with seeded mutation scripts (interleaved adds, removes,
//! and query checkpoints), overlays that cross the merge threshold
//! mid-script, and concurrent readers pinned to old epochs, comparing
//! against cold re-runs at every thread count in {1, 2, 4, 8}.

use ecrpq::eval::{BoundStatement, EvalStats, MaintainedStatement, PreparedQuery};
use ecrpq::prelude::*;
use ecrpq_graph::delta::LiveGraph;
use ecrpq_integration::prop::Gen;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 0x11FE_64A7;

/// The maintained statements the scripts run: plain CRPQs (exact
/// relaxation, dense unaries — the maintainable shape), one of them pinned
/// to a node constant.
const QUERIES: [&str; 3] = [
    "Ans(x, y) <- (x, p, y), L(p) = a b* a",
    "Ans(x, y) <- (x, p, y), L(p) = (a|b)* c",
    "Ans(y) <- (x, p, y), L(p) = a a*, x = :n0",
];

fn opts(threads: usize) -> EvalOptions {
    EvalOptions { threads, min_parallel_level: 1, ..EvalOptions::default() }
}

type Triple = (String, String, String);

/// A seeded random edge list over nodes `n0..n{nodes}` and labels
/// `{a, b, c}`. `n0` always exists (the pinned query needs it).
fn base_text(gen: &mut Gen, nodes: usize, edges: usize) -> String {
    let labels = ["a", "b", "c"];
    let mut text = String::from("n0 a n1\n");
    for _ in 0..edges {
        let f = gen.index(nodes);
        let l = labels[gen.index(labels.len())];
        let t = gen.index(nodes);
        text.push_str(&format!("n{f} {l} n{t}\n"));
    }
    text
}

/// One script step: up to three adds (occasionally introducing a new node
/// `m{k}` or a label `d` the base alphabet has never seen) and up to two
/// removes (aimed at plausible edges, so some hit pending adds, some
/// tombstone base instances, and some miss entirely).
fn script_step(gen: &mut Gen, nodes: usize) -> (Vec<Triple>, Vec<Triple>) {
    let labels = ["a", "b", "c"];
    let name = |gen: &mut Gen, fresh: bool| {
        if fresh && gen.index(4) == 0 {
            format!("m{}", gen.index(6))
        } else {
            format!("n{}", gen.index(nodes))
        }
    };
    let mut adds = Vec::new();
    for _ in 0..gen.index(4) {
        let label =
            if gen.index(8) == 0 { "d".to_string() } else { labels[gen.index(3)].to_string() };
        adds.push((name(gen, true), label, name(gen, true)));
    }
    let mut removes = Vec::new();
    for _ in 0..gen.index(3) {
        removes.push((name(gen, false), labels[gen.index(3)].to_string(), name(gen, false)));
    }
    (adds, removes)
}

fn prepared(text: &str, al: &Alphabet) -> Arc<PreparedQuery> {
    let q = parse_query(text, al).unwrap_or_else(|e| panic!("{text:?} must parse: {e}"));
    Arc::new(PreparedQuery::prepare(&q).unwrap())
}

fn maintained_set(
    base: &Arc<GraphDb>,
    live: &LiveGraph,
    cfg: &EvalConfig,
) -> Vec<(Arc<PreparedQuery>, MaintainedStatement)> {
    QUERIES
        .iter()
        .map(|q| {
            let pq = prepared(q, base.alphabet());
            let stmt = Arc::new(BoundStatement::bind(Arc::clone(&pq), Arc::clone(base)).unwrap());
            let m = MaintainedStatement::try_new(stmt, live.view(), cfg)
                .unwrap()
                .expect("suite queries are the maintainable shape");
            (pq, m)
        })
        .collect()
}

/// Sorted node-mode answers + stats of a cold run of `pq` on `graph` at
/// `threads` workers.
fn cold_run(
    pq: &Arc<PreparedQuery>,
    graph: &Arc<GraphDb>,
    threads: usize,
    cfg: &EvalConfig,
) -> (Vec<Vec<NodeId>>, EvalStats) {
    let stmt = BoundStatement::bind_with(Arc::clone(pq), Arc::clone(graph), opts(threads)).unwrap();
    let (mut nodes, stats) = stmt.run_nodes(cfg).unwrap();
    nodes.sort();
    (nodes, stats)
}

/// The core differential script: interleaved adds/removes applied to one
/// never-merging overlay with maintained statements, checkpointed every few
/// steps against cold re-runs on the merged graph at every thread count.
#[test]
fn seeded_mutation_scripts_are_bit_identical_to_cold_reruns() {
    let mut gen = Gen::new(SEED);
    let nodes = 24;
    let base =
        Arc::new(GraphDb::from_edge_list(&base_text(&mut gen, nodes, 60)).unwrap().sealed_copy());
    let cfg = EvalConfig::default();

    // `live` never merges; `oracle` replays the same script and is merged at
    // every checkpoint to produce the cold ground truth (the merged graph's
    // content is identical whether or not intermediate merges happened).
    let mut live = LiveGraph::new(Arc::clone(&base), usize::MAX / 2);
    let mut oracle = LiveGraph::new(Arc::clone(&base), usize::MAX / 2);
    let mut maintained = maintained_set(&base, &live, &cfg);

    let mut nonempty_checkpoints = 0;
    for step in 0..30 {
        let (adds, removes) = script_step(&mut gen, nodes);
        let out = live.apply(&adds, &removes);
        oracle.apply(&adds, &removes);
        for (_, m) in &mut maintained {
            m.apply(live.view(), &out.batch, &cfg).unwrap();
        }
        if step % 5 != 4 {
            continue;
        }
        let merged = oracle.force_merge();
        for (qi, (pq, m)) in maintained.iter().enumerate() {
            for &t in &THREAD_COUNTS {
                let (cold, stats) = cold_run(pq, &merged, t, &cfg);
                assert_eq!(
                    m.answers(),
                    &cold[..],
                    "step {step} query {qi}: maintained answers diverged from the \
                     cold re-run at {t} threads"
                );
                assert_eq!(
                    m.stats().verified,
                    stats.verified,
                    "step {step} query {qi}: verified count diverged at {t} threads"
                );
            }
            assert_eq!(
                m.stats().sim_cache_misses,
                0,
                "step {step} query {qi}: the delta-maintained path recompiled a sim table"
            );
            if !m.answers().is_empty() {
                nonempty_checkpoints += 1;
            }
        }
    }
    assert!(nonempty_checkpoints > 0, "the script never produced answers — vacuous run");
}

/// The same contract across epoch merge boundaries: a small merge threshold
/// forces several merges mid-script; maintained statements are rebased onto
/// each fresh epoch (serve-path order: maintain first, then rebase) and must
/// stay bit-identical through every boundary.
#[test]
fn threshold_crossing_merges_preserve_the_differential_contract() {
    let mut gen = Gen::new(SEED ^ 0x77);
    let nodes = 16;
    let base =
        Arc::new(GraphDb::from_edge_list(&base_text(&mut gen, nodes, 40)).unwrap().sealed_copy());
    let cfg = EvalConfig::default();

    let mut live = LiveGraph::new(Arc::clone(&base), 5);
    let mut oracle = LiveGraph::new(Arc::clone(&base), usize::MAX / 2);
    let mut maintained = maintained_set(&base, &live, &cfg);

    for step in 0..24 {
        let (adds, removes) = script_step(&mut gen, nodes);
        let out = live.apply(&adds, &removes);
        oracle.apply(&adds, &removes);
        for (_, m) in &mut maintained {
            m.apply(live.view(), &out.batch, &cfg).unwrap();
        }
        if let Some(epoch) = &out.merged {
            // The maintained rows already describe the merged graph; only
            // the statement handle is swapped, exactly as the serve path
            // does after publishing an epoch.
            for (pq, m) in &mut maintained {
                let stmt =
                    Arc::new(BoundStatement::bind(Arc::clone(pq), Arc::clone(epoch)).unwrap());
                m.rebase(stmt);
            }
        }
        let merged = oracle.force_merge();
        for (qi, (pq, m)) in maintained.iter().enumerate() {
            let (cold, stats) = cold_run(pq, &merged, 1, &cfg);
            assert_eq!(
                m.answers(),
                &cold[..],
                "step {step} query {qi}: answers diverged (merges so far: {})",
                live.merges()
            );
            assert_eq!(m.stats().verified, stats.verified, "step {step} query {qi}: verified");
            assert_eq!(m.stats().sim_cache_misses, 0, "step {step} query {qi}: sim recompiled");
        }
    }
    assert!(live.merges() >= 3, "the script must cross the merge threshold several times");
}

/// Readers pinned to an old epoch keep seeing that epoch's answers, bit for
/// bit, while a writer applies batches and publishes merges underneath
/// them. One reader per thread count in {1, 2, 4, 8}, each re-running its
/// pinned statement in a loop until the writer finishes.
#[test]
fn concurrent_readers_pinned_to_old_epochs_see_stable_answers() {
    let mut gen = Gen::new(SEED ^ 0xC0);
    let nodes = 16;
    let base =
        Arc::new(GraphDb::from_edge_list(&base_text(&mut gen, nodes, 40)).unwrap().sealed_copy());
    let cfg = EvalConfig::default();
    let pq = prepared("Ans(x, y) <- (x, p, y), L(p) = a a*", base.alphabet());
    let (baseline, base_stats) = cold_run(&pq, &base, 1, &cfg);
    let baseline = Arc::new(baseline);

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            // Each reader owns a statement bound to the *pre-mutation*
            // epoch; the Arc pin keeps that epoch alive across merges.
            let stmt = Arc::new(
                BoundStatement::bind_with(Arc::clone(&pq), Arc::clone(&base), opts(t)).unwrap(),
            );
            let (stop, baseline, cfg) = (Arc::clone(&stop), Arc::clone(&baseline), cfg.clone());
            std::thread::spawn(move || {
                let mut runs = 0u32;
                while !stop.load(Ordering::Relaxed) || runs == 0 {
                    let (mut nodes, stats) = stmt.run_nodes(&cfg).unwrap();
                    nodes.sort();
                    assert_eq!(
                        nodes, *baseline,
                        "a reader pinned to the old epoch saw mutated answers at {t} threads"
                    );
                    assert_eq!(stats.verified, base_stats.verified, "verified drifted at {t}");
                    runs += 1;
                }
                runs
            })
        })
        .collect();

    // The writer: a low merge threshold so epochs are published while the
    // readers run, plus one add that introduces brand-new nodes — a pair no
    // old-epoch answer set can contain.
    let mut live = LiveGraph::new(Arc::clone(&base), 4);
    live.apply(&[("w0".to_string(), "a".to_string(), "w1".to_string())], &[]);
    for _ in 0..20 {
        let (adds, removes) = script_step(&mut gen, nodes);
        live.apply(&adds, &removes);
    }
    let epoch = live.force_merge();
    assert!(live.merges() >= 3, "the writer must publish several epochs");
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().expect("reader panicked") > 0);
    }

    // The final epoch does reflect the mutations: the fresh-node pair is an
    // answer there but can't be in the pinned baseline.
    let (after, _) = cold_run(&pq, &epoch, 1, &cfg);
    let w0 = epoch.node_by_name("w0").expect("merge must carry new nodes");
    let w1 = epoch.node_by_name("w1").unwrap();
    assert!(after.contains(&vec![w0, w1]), "the merged epoch must reflect the adds");
    assert!(!baseline.contains(&vec![w0, w1]));
}
