//! Property-based tests (proptest) for the core invariants of the workspace:
//! automata algebra, regular-relation builders against reference
//! implementations, convolution round-trips, length sets, and the evaluator
//! against a naive bounded-path-enumeration reference on small graphs.

use ecrpq::eval::{self, EvalConfig};
use ecrpq::prelude::*;
use ecrpq_automata::alphabet::{convolution, deconvolution};
use ecrpq_automata::builtin;
use ecrpq_automata::dfa::{complement_nfa, Dfa};
use ecrpq_automata::unary::{length_set, length_set_default_cap};
use ecrpq_graph::path::enumerate_paths;
use proptest::prelude::*;

const LABELS: [&str; 2] = ["a", "b"];

fn alphabet() -> Alphabet {
    Alphabet::from_labels(LABELS)
}

/// A strategy producing short words over {a, b} as symbol vectors.
fn word_strategy(max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec(0u32..2, 0..=max_len)
        .prop_map(|v| v.into_iter().map(Symbol).collect())
}

/// A strategy producing small random graphs (as edge lists over ≤ 6 nodes).
fn graph_strategy() -> impl Strategy<Value = GraphDb> {
    prop::collection::vec((0u32..6, 0u32..2, 0u32..6), 1..14).prop_map(|edges| {
        let mut g = GraphDb::new(alphabet());
        let nodes = g.add_nodes(6);
        for (f, l, t) in edges {
            g.add_edge(nodes[f as usize], Symbol(l), nodes[t as usize]);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// NFA product recognizes exactly the intersection of the languages.
    #[test]
    fn intersection_is_language_intersection(w in word_strategy(8)) {
        let al = alphabet();
        let l1 = Regex::parse("a (a|b)*").unwrap().compile(&al).unwrap();
        let l2 = Regex::parse("(a|b)* b").unwrap().compile(&al).unwrap();
        let both = l1.intersect(&l2);
        prop_assert_eq!(both.accepts(&w), l1.accepts(&w) && l2.accepts(&w));
    }

    /// Determinization and complementation behave classically.
    #[test]
    fn complement_is_involution_on_membership(w in word_strategy(8)) {
        let al = alphabet();
        let lang = Regex::parse("a* b a*").unwrap().compile(&al).unwrap();
        let syms: Vec<Symbol> = al.symbols().collect();
        let dfa = Dfa::from_nfa(&lang, &syms);
        let comp = complement_nfa(&lang, &syms);
        prop_assert_eq!(dfa.accepts(&w), lang.accepts(&w));
        prop_assert_eq!(comp.accepts(&w), !lang.accepts(&w));
    }

    /// Convolution/deconvolution round-trips on arbitrary word pairs.
    #[test]
    fn convolution_round_trip(w1 in word_strategy(6), w2 in word_strategy(6)) {
        let conv = convolution(&[&w1, &w2]);
        let back = deconvolution(&conv, 2).unwrap();
        prop_assert_eq!(back[0].clone(), w1);
        prop_assert_eq!(back[1].clone(), w2);
    }

    /// The built-in equality, equal-length, and prefix relations agree with
    /// their definitional checks.
    #[test]
    fn builtin_relations_match_definitions(w1 in word_strategy(6), w2 in word_strategy(6)) {
        let al = alphabet();
        prop_assert_eq!(builtin::equality(&al).contains(&[&w1, &w2]), w1 == w2);
        prop_assert_eq!(builtin::equal_length(&al).contains(&[&w1, &w2]), w1.len() == w2.len());
        prop_assert_eq!(builtin::prefix(&al).contains(&[&w1, &w2]), w2.starts_with(&w1));
        prop_assert_eq!(builtin::length_less(&al).contains(&[&w1, &w2]), w1.len() < w2.len());
    }

    /// The edit-distance relation agrees with dynamic-programming Levenshtein.
    #[test]
    fn edit_distance_relation_is_correct(w1 in word_strategy(5), w2 in word_strategy(5), k in 0usize..3) {
        let al = alphabet();
        let rel = builtin::edit_distance_leq(&al, k);
        let expected = builtin::levenshtein(&w1, &w2) <= k;
        prop_assert_eq!(rel.contains(&[&w1, &w2]), expected);
    }

    /// Length sets computed by the reachable-set iteration agree with a
    /// brute-force check on the first 40 lengths.
    #[test]
    fn length_sets_match_brute_force(g in graph_strategy()) {
        let from = NodeId(0);
        let to = NodeId(1);
        let nfa = g.as_nfa(&[from], &[to]);
        let ls = length_set(&nfa, length_set_default_cap(nfa.num_states())).unwrap();
        // brute force: reachable sets by BFS levels
        let mut current = vec![from];
        for len in 0u64..40 {
            let reachable_now = current.contains(&to);
            prop_assert_eq!(ls.contains(len), reachable_now, "length {}", len);
            let mut next: Vec<NodeId> = current
                .iter()
                .flat_map(|&v| g.out_edges(v).iter().map(|&(_, t)| t))
                .collect();
            next.sort_unstable();
            next.dedup();
            current = next;
        }
    }

    /// The CRPQ evaluator agrees with a naive path-enumeration reference on
    /// small graphs (soundness and completeness up to the enumeration bound).
    #[test]
    fn crpq_matches_naive_reference(g in graph_strategy()) {
        let al = g.alphabet().clone();
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p", "y")
            .language("p", "a b* a")
            .build()
            .unwrap();
        let answers = eval::eval_nodes(&q, &g, &EvalConfig::default()).unwrap();
        let lang = Regex::parse("a b* a").unwrap().compile(&al).unwrap();
        // Naive: enumerate paths of length ≤ 7 from every node.
        let mut reference: Vec<Vec<NodeId>> = Vec::new();
        for x in g.nodes() {
            for p in enumerate_paths(&g, x, 7, 50_000) {
                if lang.accepts(p.label()) && !reference.contains(&vec![x, p.end()]) {
                    reference.push(vec![x, p.end()]);
                }
            }
        }
        // Every naive answer is found by the evaluator.
        for r in &reference {
            prop_assert!(answers.contains(r), "missing {:?}", r);
        }
        // Every evaluator answer of short witness length is confirmed naively.
        // (The evaluator may also return answers whose shortest witness is
        // longer than the naive bound; those are checked by `eval::check`.)
        for a in &answers {
            if !reference.contains(a) {
                // confirm via the membership machinery using a fresh witness
                let q_paths = Ecrpq::builder(&al)
                    .head_nodes(&["x", "y"])
                    .head_paths(&["p"])
                    .atom("x", "p", "y")
                    .language("p", "a b* a")
                    .build()
                    .unwrap();
                let results = eval::eval_with_paths(&q_paths, &g, &EvalConfig::default()).unwrap();
                let confirmed = results.iter().any(|ans| ans.nodes == *a);
                prop_assert!(confirmed, "unconfirmed evaluator answer {:?}", a);
            }
        }
    }

    /// The ECRPQ evaluator is sound: every answer of the equal-length query
    /// has a witnessing pair of equal-length paths (validated via `check`).
    #[test]
    fn ecrpq_equal_length_answers_are_witnessed(g in graph_strategy()) {
        let al = g.alphabet().clone();
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .head_paths(&["p1", "p2"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .language("p1", "a+")
            .language("p2", "b+")
            .relation(builtin::equal_length(&al), &["p1", "p2"])
            .build()
            .unwrap();
        let cfg = EvalConfig { answer_limit: 20, ..EvalConfig::default() };
        for ans in eval::eval_with_paths(&q, &g, &cfg).unwrap() {
            prop_assert_eq!(ans.paths[0].len(), ans.paths[1].len());
            prop_assert!(ans.paths[0].len() >= 1);
            prop_assert!(ans.paths[0].is_valid_in(&g));
            prop_assert!(ans.paths[1].is_valid_in(&g));
            prop_assert!(eval::check(&q, &g, &ans.nodes, &ans.paths, &cfg).unwrap());
        }
    }

    /// Acyclic evaluation agrees with the generic evaluator on random chain
    /// queries over random small graphs.
    #[test]
    fn acyclic_equals_generic(g in graph_strategy()) {
        let al = g.alphabet().clone();
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "z"])
            .atom("x", "p1", "y")
            .atom("y", "p2", "z")
            .language("p1", "a+")
            .language("p2", "b+")
            .build()
            .unwrap();
        let cfg = EvalConfig::default();
        let mut a = eval::eval_nodes(&q, &g, &cfg).unwrap();
        let mut b = eval::acyclic::eval_acyclic_crpq(&q, &g, &cfg).unwrap();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
