//! Workspace-level persistence suite: snapshot/sidecar round-trips, a
//! reopened-graph query differential, a seeded corruption fuzz (~220
//! truncated or bit-flipped files, every one of which must come back as a
//! structured [`StorageError`] — never a panic), and a service-level
//! save → open → warm-run differential through the wire protocol.

use ecrpq::eval::{BoundStatement, PreparedQuery};
use ecrpq::{parse_query, persist, EvalConfig};
use ecrpq_graph::prng::SplitMix64;
use ecrpq_graph::snapshot::{self, StorageError};
use ecrpq_graph::{generators, GraphDb, NodeId};
use ecrpq_server::protocol::{Control, Service};
use ecrpq_util::json;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Statements persisted alongside the differential graphs: a plain
/// concatenation, and a shape with a length constraint so the sidecar
/// carries counter-augmented sim tables too.
const QUERIES: [&str; 2] =
    ["Ans(x, y) <- (x, p, y), L(p) = a b", "Ans(x, y) <- (x, p, y), L(p) = a b a b, len(p) <= 4"];

fn bind(query: &str, g: &Arc<GraphDb>) -> Arc<BoundStatement> {
    let q = parse_query(query, g.alphabet()).expect("test query must parse");
    let pq = Arc::new(PreparedQuery::prepare(&q).expect("test query must prepare"));
    pq.warm_full();
    Arc::new(BoundStatement::bind(pq, Arc::clone(g)).expect("bind must succeed"))
}

/// A snapshot plus a two-statement sidecar for a small random graph.
fn persisted_pair(nodes: usize, seed: u64) -> (Arc<GraphDb>, Vec<u8>, Vec<u8>) {
    let g = Arc::new(generators::random_graph(nodes, 3.0, &["a", "b"], seed));
    let bytes = snapshot::write_snapshot(&g).expect("snapshot must serialize");
    let id = snapshot::snapshot_id(&bytes);
    let bound: Vec<_> = QUERIES.iter().map(|q| bind(q, &g)).collect();
    const NAMES: [&str; 2] = ["q0", "q1"];
    let entries: Vec<_> = NAMES
        .iter()
        .zip(QUERIES.iter().zip(&bound))
        .map(|(name, (text, stmt))| persist::SidecarStatement { name, text, stmt })
        .collect();
    let art = persist::write_sidecar(id, &entries);
    (g, bytes, art)
}

/// Every observable of the graph survives a write → read round trip, and
/// re-serializing the reopened graph reproduces the file byte for byte.
#[test]
fn snapshot_roundtrip_preserves_every_observable() {
    for (nodes, seed) in [(1usize, 7u64), (17, 11), (400, 0x5EED)] {
        let g = generators::random_graph(nodes, 3.0, &["a", "b", "c"], seed);
        let bytes = snapshot::write_snapshot(&g).expect("snapshot must serialize");
        let r = snapshot::read_snapshot(&bytes).expect("snapshot must reopen");

        assert_eq!(r.num_nodes(), g.num_nodes());
        assert_eq!(r.num_edges(), g.num_edges());
        for v in 0..g.num_nodes() as u32 {
            let v = NodeId(v);
            assert_eq!(r.node_name(v), g.node_name(v), "name of node {v:?}");
            assert_eq!(r.out_edges(v), g.out_edges(v), "out-row of node {v:?}");
            assert_eq!(r.in_edges(v), g.in_edges(v), "in-row of node {v:?}");
            assert_eq!(r.out_degree(v), g.out_degree(v));
            if let Some(name) = g.node_name(v) {
                assert_eq!(r.node_by_name(name), Some(v), "lookup of `{name}`");
            }
        }
        assert_eq!(*r.stats(), *g.stats(), "cached statistics");
        let again = snapshot::write_snapshot(&r).expect("reopened graph must serialize");
        assert_eq!(again, bytes, "re-serialization must be byte-identical");
    }
}

/// Anonymous nodes (no name) interleave with named ones and survive intact.
#[test]
fn snapshot_roundtrip_keeps_anonymous_nodes() {
    let mut g = GraphDb::new(ecrpq::prelude::Alphabet::from_labels(["a"]));
    let a = g.add_named_node("alpha");
    let anon = g.add_node();
    let b = g.add_named_node("beta");
    g.add_edge_labeled(a, "a", anon);
    g.add_edge_labeled(anon, "a", b);

    let bytes = snapshot::write_snapshot(&g).expect("snapshot must serialize");
    let r = snapshot::read_snapshot(&bytes).expect("snapshot must reopen");
    assert_eq!(r.node_name(a), Some("alpha"));
    assert_eq!(r.node_name(anon), None);
    assert_eq!(r.node_name(b), Some("beta"));
    assert_eq!(r.node_by_name("beta"), Some(b));
    assert_eq!(r.out_edges(anon), g.out_edges(anon));
}

/// Queries against a reopened snapshot answer bit-for-bit like the original
/// graph, and the sidecar-warmed statements compile nothing on first run.
#[test]
fn reopened_graph_answers_bit_for_bit() {
    let cfg = EvalConfig::default();
    let (g, bytes, art) = persisted_pair(600, 0xD1FF);
    let id = snapshot::snapshot_id(&bytes);

    let rg = Arc::new(snapshot::read_snapshot(&bytes).expect("snapshot must reopen"));
    let warm = persist::read_sidecar(&art, id, &rg).expect("sidecar must reopen");
    assert_eq!(warm.len(), QUERIES.len());

    for (query, w) in QUERIES.iter().zip(&warm) {
        let (cold_answers, _) = bind(query, &g).run_nodes(&cfg).expect("cold run");
        let (warm_answers, stats) = w.statement.run_nodes(&cfg).expect("warm run");
        assert_eq!(cold_answers, warm_answers, "answers diverged for `{query}`");
        assert_eq!(stats.sim_cache_misses, 0, "warm run recompiled a sim table for `{query}`");
    }
}

/// Runs `decode` over `cases` corrupted variants of `bytes` (half prefix
/// truncations, half single-bit flips, seeded) and asserts every one fails
/// with a structured error — no panic, no success.
fn corruption_fuzz<F>(what: &str, bytes: &[u8], cases: usize, seed: u64, decode: F)
where
    F: Fn(&[u8]) -> Result<(), StorageError>,
{
    let mut rng = SplitMix64::seed_from_u64(seed);
    for case in 0..cases {
        let mutated: Vec<u8> = if case % 2 == 0 {
            // Truncation: early cuts exercise the header/frame paths, the
            // prng spreads the rest across section payloads.
            let cut = if case < 32 { case / 2 } else { rng.gen_index(bytes.len()) };
            bytes[..cut].to_vec()
        } else {
            let mut m = bytes.to_vec();
            let pos = rng.gen_index(m.len());
            m[pos] ^= 1 << rng.gen_index(8);
            m
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| decode(&mutated)));
        match outcome {
            Ok(Err(_)) => {}
            Ok(Ok(())) => panic!("{what} fuzz case {case}: corrupted file decoded successfully"),
            Err(_) => panic!("{what} fuzz case {case}: decoder panicked instead of erroring"),
        }
    }
}

/// ~220 corrupted snapshot and sidecar files, every one a structured `Err`.
#[test]
fn corrupted_files_never_panic() {
    let (g, bytes, art) = persisted_pair(300, 0xFADE);
    let id = snapshot::snapshot_id(&bytes);
    corruption_fuzz("snapshot", &bytes, 120, 0xBEEF, |b| snapshot::read_snapshot(b).map(drop));
    corruption_fuzz("sidecar", &art, 100, 0xCAFE, |b| persist::read_sidecar(b, id, &g).map(drop));
}

/// A sidecar recorded against a different snapshot is rejected with a
/// structured error, and a future-versioned snapshot reports the version.
#[test]
fn mismatches_are_structured_errors() {
    let (g, bytes, art) = persisted_pair(60, 0x1D);
    let id = snapshot::snapshot_id(&bytes);
    let err = persist::read_sidecar(&art, id ^ 1, &g).expect_err("wrong graph id must fail");
    assert!(matches!(err, StorageError::Corrupt(_)), "got {err:?}");

    let mut future = bytes.clone();
    future[8] ^= 0x7F; // bump the format-version field past anything we read
    let err = snapshot::read_snapshot(&future).expect_err("future version must fail");
    match err {
        StorageError::VersionMismatch { found, expected } => {
            assert_ne!(found, expected);
            let msg = err.to_string();
            assert!(msg.contains("format version mismatch"), "unstable message: {msg}");
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

fn reply(service: &Service, line: &str) -> json::Value {
    let (text, control) = service.dispatch(line);
    assert_eq!(control, Control::Continue, "unexpected control for {line}");
    json::parse(&text).unwrap_or_else(|e| panic!("unparseable reply for {line}: {e:?}"))
}

/// End-to-end through the wire protocol: a server saves a graph with a
/// prepared statement; a *fresh* server opens the snapshot and its first
/// `run` is a registry hit with zero sim-table compilations and the same
/// answers.
#[test]
fn service_save_open_warm_differential() {
    let dir = std::env::temp_dir().join(format!("ecrpq-it-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let snap = dir.join("g.snap");
    let snap_str = snap.to_str().expect("utf-8 temp path");

    let s1 = Service::new(8);
    let r = reply(&s1, r#"{"op":"load","graph":"g","generator":"cycle:32:a"}"#);
    assert_eq!(r.get("ok").and_then(json::Value::as_bool), Some(true));
    reply(
        &s1,
        r#"{"op":"prepare","name":"q","query":"Ans(x, y) <- (x, p, y), L(p) = a a","graph":"g"}"#,
    );
    let cold = reply(&s1, r#"{"op":"run","name":"q","graph":"g"}"#);
    let r = reply(&s1, &format!(r#"{{"op":"save","graph":"g","path":"{snap_str}"}}"#));
    assert_eq!(r.get("statements").and_then(json::Value::as_u64), Some(1));

    let s2 = Service::new(8);
    let r = reply(&s2, &format!(r#"{{"op":"open","name":"g2","path":"{snap_str}"}}"#));
    assert_eq!(r.get("ok").and_then(json::Value::as_bool), Some(true));
    assert_eq!(r.get("statements").and_then(json::Value::as_u64), Some(1));

    let warm = reply(&s2, r#"{"op":"run","name":"q","graph":"g2"}"#);
    assert_eq!(warm.get("registry").and_then(json::Value::as_str), Some("hit"));
    let misses =
        warm.get("stats").and_then(|s| s.get("sim_cache_misses")).and_then(json::Value::as_u64);
    assert_eq!(misses, Some(0), "first run after open compiled a sim table");
    assert_eq!(
        cold.get("answers"),
        warm.get("answers"),
        "answers diverged between the saving and the reopening server"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
