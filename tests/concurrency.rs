//! Concurrency differential suite: N worker threads evaluate the seeded
//! parser-roundtrip query corpus against shared `Arc<GraphDb>`s and must
//! reproduce the single-threaded reference engine exactly — answer sets,
//! `verified` counts, and the `sim_cache` counters that prove compiled
//! artifacts are shared, not re-built, across threads.
//!
//! This is the differential guarantee behind the server crate: a prepared
//! statement bound once (`BoundStatement`) and hammered from a worker pool
//! behaves byte-for-byte like the one-shot single-threaded evaluator.

use ecrpq::eval::{reference, BoundStatement, EvalOptions, EvalStats, PreparedQuery};
use ecrpq::prelude::*;
use ecrpq_integration::corpus::{alphabet, random_constant_free_query_text};
use ecrpq_integration::prop::Gen;
use std::sync::Arc;

const QUERIES: usize = 18;
const THREADS: usize = 4;
const SEED: u64 = 0xC0C0_0001;

/// A small seeded random graph over the corpus alphabet.
fn corpus_graph(gen: &mut Gen, nodes: usize, edges: usize) -> GraphDb {
    let mut db = GraphDb::new(alphabet());
    let ids = db.add_nodes(nodes);
    for _ in 0..edges {
        let from = ids[gen.index(nodes)];
        let label = Symbol(gen.index(3) as u32);
        let to = ids[gen.index(nodes)];
        db.add_edge(from, label, to);
    }
    db
}

/// The single-threaded expectation for one (query, graph) pair.
struct Expected {
    /// Sorted answer set of the *reference* engine (the retained classical
    /// evaluator, ground truth of the differential suites).
    answers: Vec<Vec<NodeId>>,
    /// `verified` count of a warmed single-threaded prepared run.
    verified: u64,
    /// Full stats of that warmed run; concurrent runs must match its
    /// `sim_cache` counters exactly (misses = 0 once warm).
    warm_stats: EvalStats,
}

#[test]
fn threaded_corpus_matches_single_threaded_reference() {
    let al = alphabet();
    let cfg = EvalConfig { max_search_states: 100_000, ..EvalConfig::default() };
    let mut gen = Gen::new(SEED);

    let graphs: Vec<Arc<GraphDb>> =
        vec![Arc::new(corpus_graph(&mut gen, 4, 7)), Arc::new(corpus_graph(&mut gen, 5, 9))];

    // Prepare the corpus once (shared compiled automata), bind each query to
    // each graph, and record the single-threaded expectations.
    let mut cases: Vec<(String, Arc<BoundStatement>, Expected)> = Vec::new();
    for _ in 0..QUERIES {
        let text = random_constant_free_query_text(&mut gen);
        let query = parse_query(&text, &al)
            .unwrap_or_else(|e| panic!("corpus query must parse: {text:?}: {e}"));
        let pq = Arc::new(PreparedQuery::prepare(&query).unwrap());
        for graph in &graphs {
            let stmt = Arc::new(BoundStatement::bind(Arc::clone(&pq), Arc::clone(graph)).unwrap());
            let mut answers = reference::eval_nodes_with_stats(&query, graph, &cfg).unwrap().0;
            answers.sort();
            // Warm single-threaded run: compiles whatever the dense engine
            // needs, so the threaded runs below must be all cache hits.
            let (_, _) = stmt.run_nodes(&cfg).unwrap();
            let (mut prepared_answers, warm_stats) = stmt.run_nodes(&cfg).unwrap();
            prepared_answers.sort();
            assert_eq!(
                prepared_answers, answers,
                "single-threaded prepared run must match the reference engine for {text:?}"
            );
            assert_eq!(
                warm_stats.sim_cache_misses, 0,
                "warm single-threaded run must not compile for {text:?}"
            );
            let expected = Expected { answers, verified: warm_stats.verified, warm_stats };
            cases.push((text.clone(), Arc::clone(&stmt), expected));
        }
    }

    // Hammer every case from every thread simultaneously.
    let cases = Arc::new(cases);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cases = Arc::clone(&cases);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                // Interleave differently per thread so threads collide on
                // different cases at the same time.
                for i in 0..cases.len() {
                    let (text, stmt, expected) = &cases[(i + t * 7) % cases.len()];
                    let (mut answers, stats) = stmt.run_nodes(&cfg).unwrap();
                    answers.sort();
                    assert_eq!(
                        &answers, &expected.answers,
                        "thread {t}: answers diverged for {text:?}"
                    );
                    assert_eq!(
                        stats.verified, expected.verified,
                        "thread {t}: verified count diverged for {text:?}"
                    );
                    assert_eq!(
                        stats.sim_cache_misses, 0,
                        "thread {t}: concurrent run recompiled artifacts for {text:?}"
                    );
                    assert_eq!(
                        stats.sim_cache_hits, expected.warm_stats.sim_cache_hits,
                        "thread {t}: cache-hit count diverged for {text:?}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }
}

/// Inter- × intra-query concurrency: the server-level scenario where several
/// worker threads hammer shared cached statements *and* every individual
/// evaluation itself fans out over intra-query worker threads
/// (`EvalOptions::threads > 1`, with `min_parallel_level` forced down so the
/// tiny test frontiers really take the parallel code paths). Answers and
/// `verified` counts must still match the single-threaded reference engine
/// exactly, and — the cache-coherence half of the guarantee — warm parallel
/// runs must never recompile a simulation table: `sim_cache_misses` stays 0
/// no matter how many threads race through the shared artifacts.
#[test]
fn threaded_corpus_with_intra_query_parallelism() {
    let al = alphabet();
    let cfg = EvalConfig { max_search_states: 100_000, ..EvalConfig::default() };
    let intra = EvalOptions { threads: 2, min_parallel_level: 1, ..EvalOptions::default() };
    let mut gen = Gen::new(SEED ^ 0xBEEF);

    let graphs: Vec<Arc<GraphDb>> =
        vec![Arc::new(corpus_graph(&mut gen, 4, 7)), Arc::new(corpus_graph(&mut gen, 5, 9))];

    let mut cases: Vec<(String, Arc<BoundStatement>, Expected)> = Vec::new();
    for _ in 0..8 {
        let text = random_constant_free_query_text(&mut gen);
        let query = parse_query(&text, &al)
            .unwrap_or_else(|e| panic!("corpus query must parse: {text:?}: {e}"));
        let pq = Arc::new(PreparedQuery::prepare(&query).unwrap());
        for graph in &graphs {
            let stmt = Arc::new(
                BoundStatement::bind_with(Arc::clone(&pq), Arc::clone(graph), intra).unwrap(),
            );
            let mut answers = reference::eval_nodes_with_stats(&query, graph, &cfg).unwrap().0;
            answers.sort();
            let (_, _) = stmt.run_nodes(&cfg).unwrap(); // warm the caches
            let (mut warm_answers, warm_stats) = stmt.run_nodes(&cfg).unwrap();
            warm_answers.sort();
            assert_eq!(warm_answers, answers, "warm intra-parallel run diverged for {text:?}");
            assert_eq!(
                warm_stats.sim_cache_misses, 0,
                "warm intra-parallel run must not compile for {text:?}"
            );
            let expected = Expected { answers, verified: warm_stats.verified, warm_stats };
            cases.push((text.clone(), Arc::clone(&stmt), expected));
        }
    }

    // Every client thread runs every case; every case itself runs on 2
    // intra-query threads — THREADS × 2 workers collide on the same shared
    // sim tables, arenas kept thread-local, and CSR adjacency.
    let cases = Arc::new(cases);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cases = Arc::clone(&cases);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                for i in 0..cases.len() {
                    let (text, stmt, expected) = &cases[(i + t * 5) % cases.len()];
                    let (mut answers, stats) = stmt.run_nodes(&cfg).unwrap();
                    answers.sort();
                    assert_eq!(
                        &answers, &expected.answers,
                        "thread {t}: intra-parallel answers diverged for {text:?}"
                    );
                    assert_eq!(
                        stats.verified, expected.verified,
                        "thread {t}: intra-parallel verified count diverged for {text:?}"
                    );
                    assert_eq!(
                        stats.sim_cache_misses, 0,
                        "thread {t}: warm intra-parallel run recompiled artifacts for {text:?}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }
}

/// Cold-start race: many threads force the first compilation of the same
/// shared prepared query at once; `OnceLock` must hand every thread the same
/// tables and the hit/miss counters must stay coherent (at most one miss per
/// artifact across the whole process).
#[test]
fn cold_prepared_query_races_compile_exactly_once() {
    let al = alphabet();
    let cfg = EvalConfig::default();
    let text = "Ans(x0, x1) <- (x0, p0, x1), (x1, p1, x2), L(p0) = a (a|b)*, R(p0, p1) = el";
    let query = parse_query(text, &al).unwrap();
    let pq = Arc::new(PreparedQuery::prepare(&query).unwrap());
    let mut gen = Gen::new(SEED ^ 0xDEAD);
    let graph = Arc::new(corpus_graph(&mut gen, 6, 12));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let pq = Arc::clone(&pq);
            let graph = Arc::clone(&graph);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let stmt = BoundStatement::bind(pq, graph).unwrap();
                let (mut answers, stats) = stmt.run_nodes(&cfg).unwrap();
                answers.sort();
                (answers, stats)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut expected = reference::eval_nodes_with_stats(&query, &graph, &cfg).unwrap().0;
    expected.sort();
    for (answers, _) in &results {
        assert_eq!(answers, &expected);
    }
    // After the race, every artifact is cached process-wide: a fresh bind of
    // the same prepared query reports hits only. (During the race itself two
    // threads may both *observe* a miss for the same artifact — the counters
    // are observational — but `OnceLock` guarantees one compilation, and the
    // per-run artifact count stays coherent in every thread.)
    let (_, solo) =
        BoundStatement::bind(Arc::clone(&pq), Arc::clone(&graph)).unwrap().run_nodes(&cfg).unwrap();
    assert_eq!(solo.sim_cache_misses, 0, "post-race run must be all cache hits");
    let per_run_artifacts = solo.sim_cache_hits;
    for (_, stats) in &results {
        assert_eq!(
            stats.sim_cache_hits + stats.sim_cache_misses,
            per_run_artifacts,
            "every run touches the same artifact set"
        );
    }
}
