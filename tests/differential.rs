//! Differential property suite: the dense product engine against the
//! retained reference implementation.
//!
//! Every test generates seeded random multi-label graphs and queries and
//! asserts that `ecrpq::eval` (the dense engine: interned flat-`u64` states,
//! bitset relation state sets stepped through precompiled tables) and
//! `ecrpq::eval::reference` (the classical cloned-state BFS) agree exactly:
//! identical answer sets, identical `EvalStats::verified` counts, identical
//! membership verdicts for pinned paths, and answer-automaton emptiness
//! verdicts consistent with the reference answer set.

use ecrpq::eval::{self, answers, reference, EvalConfig};
use ecrpq::prelude::*;
use ecrpq_automata::builtin;
use ecrpq_automata::semilinear::CmpOp;
use ecrpq_graph::path::enumerate_paths;
use ecrpq_integration::prop::{self, Gen};

const LABELS: [&str; 3] = ["a", "b", "c"];
const CASES: usize = 24;

fn alphabet() -> Alphabet {
    Alphabet::from_labels(LABELS)
}

/// A small random graph over 5 nodes and 3 labels.
fn graph(g: &mut Gen) -> GraphDb {
    let mut db = GraphDb::new(alphabet());
    let nodes = db.add_nodes(5);
    let num_edges = g.range(2, 11);
    for _ in 0..num_edges {
        let from = nodes[g.index(5)];
        let label = Symbol(g.index(3) as u32);
        let to = nodes[g.index(5)];
        db.add_edge(from, label, to);
    }
    db
}

/// A random regular-language constraint string.
fn language(g: &mut Gen) -> &'static str {
    const LANGS: [&str; 6] = ["a*", "(a|b)*", "a (a|b)*", "(a|b|c)* c", "a* b*", ". .*"];
    LANGS[g.index(LANGS.len())]
}

fn config() -> EvalConfig {
    EvalConfig { max_search_states: 200_000, ..EvalConfig::default() }
}

/// Sorts node-tuple answer sets for order-insensitive comparison.
fn sorted(mut answers: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    answers.sort();
    answers
}

/// Asserts both engines agree on the answer set and the verified count.
fn assert_engines_agree(q: &ecrpq::query::Ecrpq, db: &GraphDb, what: &str) {
    let cfg = config();
    let (dense, dense_stats) = eval::eval_nodes_with_stats(q, db, &cfg).unwrap();
    let (refr, ref_stats) = reference::eval_nodes_with_stats(q, db, &cfg).unwrap();
    assert_eq!(sorted(dense.clone()), sorted(refr), "{what}: answer sets differ");
    assert_eq!(dense_stats.verified, ref_stats.verified, "{what}: verified counts differ");
    assert_eq!(dense_stats.candidates, ref_stats.candidates, "{what}: candidate counts differ");
}

/// Plain two-atom ECRPQs with an equal-length or equality relation.
#[test]
fn engines_agree_on_relational_queries() {
    let al = alphabet();
    prop::check(CASES, 0xD1FF_0001, |g| {
        let db = graph(g);
        let rel = if g.index(2) == 0 { builtin::equal_length(&al) } else { builtin::equality(&al) };
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .language("p1", language(g))
            .language("p2", language(g))
            .relation(rel, &["p1", "p2"])
            .build()
            .unwrap();
        assert_engines_agree(&q, &db, "relational");
    });
}

/// CRPQs with a repeated path variable (the same π bound by two atoms).
#[test]
fn engines_agree_on_repeated_atoms() {
    let al = alphabet();
    prop::check(CASES, 0xD1FF_0002, |g| {
        let db = graph(g);
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x"])
            .atom("x", "p", "y")
            .atom("x", "p", "z")
            .language("p", language(g))
            .build()
            .unwrap();
        assert_engines_agree(&q, &db, "repeated atom");
    });
}

/// Queries with linear constraints (counters in the search state).
#[test]
fn engines_agree_on_linear_constraints() {
    let al = alphabet();
    prop::check(CASES, 0xD1FF_0003, |g| {
        let db = graph(g);
        let ops = [CmpOp::Ge, CmpOp::Eq, CmpOp::Le];
        let c1 = eval::counts::length("p", ops[g.index(3)], g.range(0, 4) as i64);
        let c2 = eval::counts::label_count("p", "a", ops[g.index(3)], g.range(0, 2) as i64);
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p", "y")
            .language("p", language(g))
            .linear_constraint(c1.terms.clone(), c1.op, c1.constant)
            .linear_constraint(c2.terms.clone(), c2.op, c2.constant)
            .build()
            .unwrap();
        assert_engines_agree(&q, &db, "linear constraints");
    });
}

/// Membership checks with pinned paths: both engines must return the same
/// verdict for random (node, path) tuples, both valid and invalid.
#[test]
fn engines_agree_on_pinned_path_membership() {
    let al = alphabet();
    let cfg = config();
    prop::check(CASES, 0xD1FF_0004, |g| {
        let db = graph(g);
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x"])
            .head_paths(&["p1", "p2"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .language("p1", language(g))
            .relation(builtin::equal_length(&al), &["p1", "p2"])
            .build()
            .unwrap();
        let start = NodeId(g.index(5) as u32);
        let paths1 = enumerate_paths(&db, start, 3, 8);
        let p1 = paths1[g.index(paths1.len())].clone();
        let paths2 = enumerate_paths(&db, p1.end(), 3, 8);
        let p2 = paths2[g.index(paths2.len())].clone();
        let nodes = [start];
        let tuple = [p1, p2];
        let dense = eval::check(&q, &db, &nodes, &tuple, &cfg).unwrap();
        let refr = reference::check(&q, &db, &nodes, &tuple, &cfg).unwrap();
        assert_eq!(dense, refr, "membership verdicts differ for {tuple:?}");
    });
}

/// Witness paths produced by the dense engine are genuine members of the
/// answer set according to the reference engine.
#[test]
fn dense_witnesses_verify_under_reference_membership() {
    let al = alphabet();
    let cfg = EvalConfig { answer_limit: 8, ..config() };
    prop::check(CASES, 0xD1FF_0005, |g| {
        let db = graph(g);
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .head_paths(&["p"])
            .atom("x", "p", "y")
            .language("p", language(g))
            .build()
            .unwrap();
        let answers = eval::eval_with_paths(&q, &db, &cfg).unwrap();
        for ans in answers.iter().take(4) {
            assert!(
                reference::check(&q, &db, &ans.nodes, &ans.paths, &cfg).unwrap(),
                "dense witness rejected by the reference engine: {ans:?}"
            );
        }
    });
}

/// Answer-automaton emptiness must coincide with membership of the bound
/// nodes in the reference engine's answer set: the automaton for `v̄` is
/// non-empty iff some path tuple completes `v̄` to an answer.
#[test]
fn answer_automaton_emptiness_matches_reference_answers() {
    let al = alphabet();
    let cfg = config();
    prop::check(CASES, 0xD1FF_0006, |g| {
        let db = graph(g);
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .head_paths(&["p"])
            .atom("x", "p", "y")
            .language("p", language(g))
            .build()
            .unwrap();
        let (ref_answers, _) = reference::eval_nodes_with_stats(&q, &db, &cfg).unwrap();
        let x = NodeId(g.index(5) as u32);
        let y = NodeId(g.index(5) as u32);
        let aut = answers::answer_automaton(&q, &db, &[x, y], &cfg).unwrap();
        let in_ref = ref_answers.contains(&vec![x, y]);
        assert_eq!(
            !aut.is_empty(),
            in_ref,
            "automaton emptiness for ({x:?},{y:?}) disagrees with the reference answer set"
        );
    });
}

/// The two-sided variant with a relation: emptiness verdicts across all node
/// pairs on a fixed small graph.
#[test]
fn answer_automaton_emptiness_with_relations() {
    let al = alphabet();
    let cfg = config();
    prop::check(8, 0xD1FF_0007, |g| {
        let db = graph(g);
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .head_paths(&["p1", "p2"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .relation(builtin::equal_length(&al), &["p1", "p2"])
            .build()
            .unwrap();
        let (ref_answers, _) = reference::eval_nodes_with_stats(&q, &db, &cfg).unwrap();
        for x in 0..5u32 {
            for y in 0..5u32 {
                let aut =
                    answers::answer_automaton(&q, &db, &[NodeId(x), NodeId(y)], &cfg).unwrap();
                assert_eq!(
                    !aut.is_empty(),
                    ref_answers.contains(&vec![NodeId(x), NodeId(y)]),
                    "emptiness disagrees at ({x},{y})"
                );
            }
        }
    });
}

/// Prepared-then-bound execution must match both the one-shot path and the
/// reference engine on identical answer sets, and re-binding the same
/// prepared query to fresh graphs must skip automaton compilation entirely
/// (nonzero cache hits, zero misses on reuse).
#[test]
fn prepared_then_bound_matches_one_shot_and_reference() {
    let al = alphabet();
    let cfg = config();
    prop::check(CASES, 0xD1FF_0008, |g| {
        let rel = if g.index(2) == 0 { builtin::equal_length(&al) } else { builtin::equality(&al) };
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .language("p1", language(g))
            .language("p2", language(g))
            .relation(rel, &["p1", "p2"])
            .build()
            .unwrap();
        let prepared = eval::prepare(&q).unwrap();
        for graph_idx in 0..3 {
            let db = graph(g);
            // The cache contract below is about the prepared pipeline, so pin
            // the planner to the static mode: the cost-based planner adapts
            // BFS directions to each graph's statistics and may lazily
            // compile reverse tables on a later graph — a legitimate
            // first-compile, not a recompilation. (The one-shot and reference
            // runs still plan cost-based, so this doubles as a cross-planner
            // differential check.)
            let static_opts = eval::EvalOptions {
                planner: eval::PlannerMode::Static,
                ..eval::EvalOptions::default()
            };
            let bound = prepared.bind_with(&db, static_opts).unwrap();
            let (mut prep_ans, prep_stats) = bound.run_nodes(&cfg).unwrap();
            let mut oneshot = eval::eval_nodes(&q, &db, &cfg).unwrap();
            let (mut refr, _) = reference::eval_nodes_with_stats(&q, &db, &cfg).unwrap();
            prep_ans.sort();
            oneshot.sort();
            refr.sort();
            assert_eq!(prep_ans, oneshot, "prepared answers differ from one-shot");
            assert_eq!(prep_ans, refr, "prepared answers differ from reference");
            if graph_idx == 0 {
                // A freshly prepared ECRPQ (wide relation forces the search)
                // must actually compile its automata on the first run.
                assert!(
                    prep_stats.sim_cache_misses > 0,
                    "first run of a fresh prepared query must compile automata"
                );
            } else {
                assert_eq!(
                    prep_stats.sim_cache_misses, 0,
                    "reuse on a fresh graph must not recompile automata"
                );
                assert!(prep_stats.sim_cache_hits > 0, "reuse must report cache hits");
            }
        }
    });
}

/// The prepared membership check and answer automaton agree with their
/// one-shot counterparts.
#[test]
fn prepared_check_and_answer_automaton_match_one_shot() {
    let al = alphabet();
    let cfg = config();
    prop::check(8, 0xD1FF_0009, |g| {
        let db = graph(g);
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .head_paths(&["p"])
            .atom("x", "p", "y")
            .language("p", language(g))
            .build()
            .unwrap();
        let prepared = eval::prepare(&q).unwrap();
        let bound = prepared.bind(&db).unwrap();
        for x in 0..5u32 {
            for y in 0..5u32 {
                let nodes = [NodeId(x), NodeId(y)];
                let one_shot = answers::answer_automaton(&q, &db, &nodes, &cfg).unwrap();
                let via_plan = bound.answer_automaton(&nodes, &cfg).unwrap();
                assert_eq!(one_shot.is_empty(), via_plan.is_empty(), "emptiness at ({x},{y})");
            }
        }
        let paths = enumerate_paths(&db, NodeId(g.index(5) as u32), 3, 6);
        let p = paths[g.index(paths.len())].clone();
        let nodes = [p.start(), p.end()];
        let tuple = [p];
        assert_eq!(
            bound.check(&nodes, &tuple, &cfg).unwrap(),
            eval::check(&q, &db, &nodes, &tuple, &cfg).unwrap(),
            "prepared membership verdict differs from one-shot"
        );
    });
}

/// The size-gated fallback paths: a relation automaton past the dense-engine
/// state bound must route candidate verification, reachability, and the
/// answer-automaton construction through the classical sparse code while
/// producing exactly the reference answers.
#[test]
fn oversized_relation_automata_fall_back_correctly() {
    // a^2100 as a 2101-state chain NFA — past the ~2k dense-engine bound.
    const LEN: usize = 2100;
    const CYCLE: usize = 30; // LEN % CYCLE == 0, so a^LEN loops back to start
    let mut g = GraphDb::new(Alphabet::from_labels(["a"]));
    let nodes = g.add_nodes(CYCLE);
    let a = g.alphabet().sym("a");
    for i in 0..CYCLE {
        g.add_edge(nodes[i], a, nodes[(i + 1) % CYCLE]);
    }
    let mut chain = ecrpq_automata::Nfa::new();
    let states = chain.add_states(LEN + 1);
    chain.add_initial(states[0]);
    chain.set_accepting(states[LEN], true);
    for i in 0..LEN {
        chain.add_transition(states[i], a, states[i + 1]);
    }
    let al = g.alphabet().clone();
    let rel = ecrpq_automata::RegularRelation::from_language(&chain);
    assert!(rel.num_states() > 2048, "test must exceed the dense-engine bound");

    // Head paths force the convolution search even for this arity-1 query.
    let q = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .head_paths(&["p"])
        .atom("x", "p", "y")
        .relation(rel, &["p"])
        .build()
        .unwrap();
    let cfg = EvalConfig { max_search_states: 500_000, ..EvalConfig::default() };

    // Dense entry point (which must dispatch to the fallback) vs reference.
    let (dense, dense_stats) = eval::eval_nodes_with_stats(&q, &g, &cfg).unwrap();
    let (refr, ref_stats) = reference::eval_nodes_with_stats(&q, &g, &cfg).unwrap();
    assert_eq!(sorted(dense.clone()), sorted(refr));
    assert_eq!(dense_stats.verified, ref_stats.verified);
    // a^2100 from node i always ends back at node i on a 30-cycle.
    let expected: Vec<Vec<NodeId>> =
        (0..CYCLE as u32).map(|i| vec![NodeId(i), NodeId(i)]).collect();
    assert_eq!(sorted(dense), expected);

    // Answer automaton (classical fallback): non-empty exactly at (v, v),
    // accepting the a^LEN path and rejecting the short cycle.
    let aut = answers::answer_automaton(&q, &g, &[nodes[0], nodes[0]], &cfg).unwrap();
    assert!(!aut.is_empty());
    let mut long_path = ecrpq_graph::Path::empty(nodes[0]);
    let mut short_path = ecrpq_graph::Path::empty(nodes[0]);
    for i in 0..LEN {
        long_path.push(a, nodes[(i + 1) % CYCLE]);
        if i < CYCLE {
            short_path.push(a, nodes[(i + 1) % CYCLE]);
        }
    }
    assert!(aut.contains(&[long_path]));
    assert!(!aut.contains(&[short_path]));
    let aut_off = answers::answer_automaton(&q, &g, &[nodes[0], nodes[1]], &cfg).unwrap();
    assert!(aut_off.is_empty());
}
