//! Integration tests for the bounded containment checker (Section 7).

use ecrpq::containment::{check_containment, ContainmentResult};
use ecrpq::eval::{self, EvalConfig};
use ecrpq::prelude::*;

fn cfg() -> EvalConfig {
    EvalConfig::default()
}

/// Language refinement: `a b a ⊑ a (a|b)* a` but not conversely.
#[test]
fn containment_of_language_refinements() {
    let al = Alphabet::from_labels(["a", "b"]);
    let specific = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p", "y")
        .language("p", "a b a")
        .build()
        .unwrap();
    let general = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p", "y")
        .language("p", "a (a|b)* a")
        .build()
        .unwrap();
    assert!(!check_containment(&specific, &general, 4, &cfg()).unwrap().is_counterexample());
    let counter = check_containment(&general, &specific, 4, &cfg()).unwrap();
    match counter {
        ContainmentResult::NotContained { witness, nodes, paths } => {
            // The witness is a real counterexample: the left query selects the
            // tuple, the right one does not.
            assert!(eval::check(&general, &witness, &nodes, &paths, &cfg()).unwrap());
            assert!(!eval::check(&specific, &witness, &nodes, &paths, &cfg()).unwrap());
        }
        other => panic!("expected a counterexample, got {other:?}"),
    }
}

/// An ECRPQ is contained in its CRPQ relaxation (dropping the relations), and
/// containment certificates in the other direction produce genuine witnesses
/// (the Theorem 7.2 direction: ECRPQ ⊑ CRPQ).
#[test]
fn ecrpq_contained_in_its_relaxation() {
    let al = Alphabet::from_labels(["a", "b"]);
    let tight = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p1", "z")
        .atom("z", "p2", "y")
        .language("p1", "(a|b)+")
        .language("p2", "(a|b)+")
        .relation(builtin::equality(&al), &["p1", "p2"])
        .build()
        .unwrap();
    let relaxed = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p1", "z")
        .atom("z", "p2", "y")
        .language("p1", "(a|b)+")
        .language("p2", "(a|b)+")
        .build()
        .unwrap();
    assert!(!check_containment(&tight, &relaxed, 3, &cfg()).unwrap().is_counterexample());
    assert!(check_containment(&relaxed, &tight, 3, &cfg()).unwrap().is_counterexample());
}

/// Equivalence of two syntactically different queries with the same meaning:
/// `a a*` vs `a* a` (checked in both directions up to the bound).
#[test]
fn equivalent_queries_have_no_counterexamples() {
    let al = Alphabet::from_labels(["a"]);
    let left = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p", "y")
        .language("p", "a a*")
        .build()
        .unwrap();
    let right = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p", "y")
        .language("p", "a* a")
        .build()
        .unwrap();
    for (q1, q2) in [(&left, &right), (&right, &left)] {
        let r = check_containment(q1, q2, 5, &cfg()).unwrap();
        assert!(!r.is_counterexample());
        if let ContainmentResult::ContainedUpTo { canonical_databases, .. } = r {
            assert!(canonical_databases > 0);
        }
    }
}

/// Containment with relation atoms on the left: the pattern query `XX`
/// (squares) is contained in "some path of even length" (expressed with
/// two equal-length halves) but not in "path labeled a+".
#[test]
fn pattern_query_containments() {
    let al = Alphabet::from_labels(["a", "b"]);
    let squares =
        ecrpq::expressiveness::pattern_to_ecrpq(&ecrpq::expressiveness::parse_pattern("XX"), &al)
            .unwrap();
    // Rebuild an even-length query with the same head-variable names so the
    // head signatures line up.
    let even = Ecrpq::builder(&al)
        .head_nodes(&["x0", "x2"])
        .atom("x0", "q1", "m")
        .atom("m", "q2", "x2")
        .relation(builtin::equal_length(&al), &["q1", "q2"])
        .build()
        .unwrap();
    assert!(!check_containment(&squares, &even, 2, &cfg()).unwrap().is_counterexample());
    let only_a = Ecrpq::builder(&al)
        .head_nodes(&["x0", "x2"])
        .atom("x0", "q", "x2")
        .language("q", "a+")
        .build()
        .unwrap();
    assert!(check_containment(&squares, &only_a, 2, &cfg()).unwrap().is_counterexample());
}

/// Boolean queries: containment between Boolean queries compares truth on
/// every canonical database.
#[test]
fn boolean_containment() {
    let al = Alphabet::from_labels(["a", "b"]);
    let has_ab = Ecrpq::builder(&al).atom("x", "p", "y").language("p", "a b").build().unwrap();
    let has_any = Ecrpq::builder(&al).atom("x", "p", "y").language("p", ". .").build().unwrap();
    assert!(!check_containment(&has_ab, &has_any, 3, &cfg()).unwrap().is_counterexample());
    assert!(check_containment(&has_any, &has_ab, 3, &cfg()).unwrap().is_counterexample());
}
