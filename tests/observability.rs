//! Integration suite for the observability surface: the `trace` op's span
//! tree, the `metrics`/`slowlog` ops, the `--metrics-addr` exposition
//! endpoint, and the `version`/`uptime_s` stats fields — all driven over a
//! real in-process [`Server`] on loopback TCP, the same transport
//! `ecrpq-serve` exposes.
//!
//! The scrape test is the integration half of the `--metrics-smoke` gate in
//! `scripts/check.sh`: it asserts the request histogram's `_count` on the
//! exposition endpoint reconciles exactly with the number of requests this
//! test sent.

use ecrpq_server::client::Client;
use ecrpq_server::server::{Server, ServerConfig, ServerHandle};
use ecrpq_util::json::Value;
use std::io::Read;
use std::net::TcpStream;

const GRAPH: &str = "ring";
const STMT: &str = "two_hops";

/// Spawns a server with the metrics endpoint open and the slow-query log
/// armed at 1ms, loads a small graph, and warms one prepared statement.
fn spawn_observed() -> ServerHandle {
    let handle = Server::spawn(ServerConfig {
        workers: 2,
        exec_workers: 2,
        slow_query_ms: 1,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let mut c = Client::connect(handle.addr()).expect("connect setup");
    c.load_generator(GRAPH, "cycle:8:a").expect("load graph");
    c.prepare_for_graph(STMT, "Ans(x, y) <- (x, p, y), L(p) = a a", GRAPH).expect("prepare");
    c.run_mode(STMT, GRAPH, "nodes").expect("warm run");
    c.close().expect("close setup");
    handle
}

/// One scrape of the exposition endpoint: connect, read to EOF.
fn scrape(handle: &ServerHandle) -> String {
    let addr = handle.metrics_addr().expect("metrics endpoint configured");
    let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read exposition text");
    text
}

/// The `_count` sample value for `family{labels}` in exposition text.
fn sample(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn metrics_endpoint_reconciles_with_requests_sent() {
    let handle = spawn_observed();
    let mut c = Client::connect(handle.addr()).expect("connect");
    for _ in 0..5 {
        c.run_mode(STMT, GRAPH, "nodes").expect("run");
    }

    let text = scrape(&handle);
    // Setup issued one warm run; this test issued five more.
    assert_eq!(
        sample(&text, "ecrpq_request_us_count{op=\"run\"}"),
        Some(6),
        "run histogram count must equal runs sent:\n{text}"
    );
    assert_eq!(sample(&text, "ecrpq_request_us_count{op=\"load\"}"), Some(1));
    // The scrape endpoint itself is not a protocol request — a second
    // scrape must see the same request counts.
    let again = scrape(&handle);
    assert_eq!(
        sample(&again, "ecrpq_request_us_count{op=\"run\"}"),
        Some(6),
        "scraping must not perturb request counters"
    );

    handle.shutdown();
}

#[test]
fn exposition_text_is_structurally_wellformed() {
    let handle = spawn_observed();
    let text = scrape(&handle);

    // Every family: `# HELP` immediately before `# TYPE`, samples after.
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split(' ').next().unwrap();
            assert!(
                lines[i - 1].starts_with(&format!("# HELP {name} ")),
                "TYPE for `{name}` not preceded by its HELP line"
            );
        }
    }

    // Histogram bucket series are cumulative and end at `+Inf` == `_count`.
    for op in ["load", "prepare", "run"] {
        let prefix = format!("ecrpq_request_us_bucket{{op=\"{op}\",le=");
        let mut prev = 0u64;
        let mut inf = None;
        for line in &lines {
            if let Some(rest) = line.strip_prefix(&prefix) {
                let count: u64 = line.rsplit(' ').next().unwrap().parse().expect("bucket count");
                assert!(count >= prev, "bucket series not cumulative: {line}");
                prev = count;
                if rest.starts_with("\"+Inf\"") {
                    inf = Some(count);
                }
            }
        }
        assert_eq!(
            inf,
            sample(&text, &format!("ecrpq_request_us_count{{op=\"{op}\"}}")),
            "+Inf bucket must equal _count for op={op}"
        );
    }

    // The gauges the serve path maintains are all present.
    for family in [
        "ecrpq_uptime_seconds",
        "ecrpq_queue_depth",
        "ecrpq_cache_hit_rate",
        "ecrpq_shard_hit_rate",
        "ecrpq_requests_total",
    ] {
        assert!(text.contains(family), "missing family `{family}`:\n{text}");
    }

    handle.shutdown();
}

/// Depth-first span walk asserting positive durations, sibling order, and
/// parent containment (2µs slack for float rounding at render time).
fn assert_monotonic(span: &Value, window: &mut (f64, f64)) {
    let name = span.get("name").and_then(Value::as_str).unwrap();
    let start = span.get("start_us").and_then(Value::as_f64).unwrap();
    let dur = span.get("dur_us").and_then(Value::as_f64).unwrap();
    assert!(dur > 0.0, "span `{name}` has non-positive duration");
    assert!(start >= window.0, "span `{name}` starts before its predecessor");
    assert!(start + dur <= window.1 + 0.002, "span `{name}` escapes its parent");
    window.0 = start;
    let mut inner = (start, start + dur);
    for kid in span.get("children").and_then(Value::as_arr).unwrap_or(&[]) {
        assert_monotonic(kid, &mut inner);
    }
}

#[test]
fn trace_over_tcp_is_monotonic_and_reconciles_with_recorded_latency() {
    let handle = spawn_observed();
    let mut c = Client::connect(handle.addr()).expect("connect");
    let expected = c.run_mode(STMT, GRAPH, "nodes").expect("plain run");

    let reply = c.trace(STMT, GRAPH, "nodes").expect("trace");
    assert_eq!(reply.get("answers"), expected.get("answers"), "tracing changed answers");

    let trace = reply.get("trace").expect("trace object");
    let spans = trace.get("spans").and_then(Value::as_arr).expect("span array");
    assert_eq!(spans.len(), 1, "one root span");
    let mut window = (0.0, f64::INFINITY);
    assert_monotonic(&spans[0], &mut window);

    // Acceptance criterion: phase durations sum to within 10% of the
    // latency the server recorded in its request histogram.
    let total = trace.get("server_latency_us").and_then(Value::as_f64).expect("latency");
    let phase_sum: f64 = spans[0]
        .get("children")
        .and_then(Value::as_arr)
        .expect("root phases")
        .iter()
        .map(|c| c.get("dur_us").and_then(Value::as_f64).unwrap())
        .sum();
    assert!(
        (phase_sum - total).abs() <= total * 0.10,
        "phases sum to {phase_sum}µs but the server recorded {total}µs"
    );

    // The per-atom search span sits next to the planner's estimate — the
    // EXPLAIN ANALYZE contract: actual pairs and estimated pairs together.
    fn find<'v>(span: &'v Value, name: &str) -> Option<&'v Value> {
        if span.get("name").and_then(Value::as_str) == Some(name) {
            return Some(span);
        }
        span.get("children")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .find_map(|k| find(k, name))
    }
    let reach = find(&spans[0], "reach:p").expect("per-atom reach span");
    let attrs = reach.get("attrs").expect("reach attrs");
    assert!(attrs.get("pairs").and_then(Value::as_u64).is_some());
    assert!(attrs.get("est_pairs").and_then(Value::as_u64).is_some());

    handle.shutdown();
}

#[test]
fn slowlog_captures_a_slow_request_over_tcp() {
    let handle = spawn_observed();
    let mut c = Client::connect(handle.addr()).expect("connect");

    // Loading a 50k-node graph comfortably exceeds the 1ms threshold in any
    // build profile; warm nodes-runs on the 8-cycle comfortably stay under.
    c.load_generator("big", "cycle:50000:a").expect("slow load");

    let reply = c.slowlog(Some(8)).expect("slowlog");
    assert_eq!(reply.get("threshold_ms").and_then(Value::as_u64), Some(1));
    let entries = reply.get("entries").and_then(Value::as_arr).expect("entries");
    let slow_load = entries
        .iter()
        .find(|e| {
            e.get("op").and_then(Value::as_str) == Some("load")
                && e.get("graph").and_then(Value::as_str) == Some("big")
        })
        .expect("the big load must appear in the slow-query log");
    assert!(slow_load.get("micros").and_then(Value::as_u64).unwrap() >= 1000);
    assert_eq!(slow_load.get("error").and_then(Value::as_bool), Some(false));

    handle.shutdown();
}

#[test]
fn stats_carries_version_and_uptime_over_tcp() {
    let handle = spawn_observed();
    let mut c = Client::connect(handle.addr()).expect("connect");
    let st = c.stats().expect("stats");
    assert_eq!(
        st.get("version").and_then(Value::as_str),
        Some(env!("CARGO_PKG_VERSION")),
        "server version must match the workspace version"
    );
    assert!(st.get("uptime_s").and_then(Value::as_u64).is_some());
    handle.shutdown();
}
