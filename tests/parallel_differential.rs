//! Cross-engine differential fuzz harness for the frontier-parallel
//! product engine.
//!
//! The parallel engine promises to be *bit-identical* to the sequential one
//! — not just "same answers modulo order", but the same `Vec<Answer>`
//! (including witness paths and their order), the same `verified` counts,
//! the same membership verdicts, and the same answer automaton. This suite
//! enforces that promise with a seeded corpus of random textual queries run
//! at every thread count in {1, 2, 4, 8} against three graph families
//! (random multi-label, string, and the REI gadget graph), always comparing
//! against two independent ground truths: the sequential dense engine
//! (`threads = 1`) and the retained classical reference engine
//! (`ecrpq::eval::reference`).
//!
//! `min_parallel_level` is forced to 1 throughout so even the tiny frontiers
//! of these test graphs exercise the parallel expansion + deterministic
//! merge code paths rather than the inline fallback.

use ecrpq::eval::{reference, EvalOptions, PreparedQuery};
use ecrpq::prelude::*;
use ecrpq_graph::path::enumerate_paths;
use ecrpq_integration::corpus::{alphabet, random_constant_free_query_text};
use ecrpq_integration::prop::Gen;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 0x9A7A_11E1;

fn opts(threads: usize) -> EvalOptions {
    EvalOptions { threads, min_parallel_level: 1, ..EvalOptions::default() }
}

fn config() -> EvalConfig {
    EvalConfig { max_search_states: 100_000, answer_limit: 20, ..EvalConfig::default() }
}

/// A small seeded random graph over the corpus alphabet `{a, b, c}`.
fn random_graph(gen: &mut Gen, nodes: usize, edges: usize) -> GraphDb {
    let mut db = GraphDb::new(alphabet());
    let ids = db.add_nodes(nodes);
    for _ in 0..edges {
        let from = ids[gen.index(nodes)];
        let label = Symbol(gen.index(3) as u32);
        let to = ids[gen.index(nodes)];
        db.add_edge(from, label, to);
    }
    db
}

/// The three graph families the corpus runs against: a seeded random
/// multi-label graph, a string (line) graph, and the REI gadget graph of
/// the paper's PSPACE reduction.
fn graph_families(gen: &mut Gen) -> Vec<(&'static str, GraphDb)> {
    let word: Vec<&str> = vec!["a", "b", "a", "b", "a", "b", "a"];
    vec![
        ("random", random_graph(gen, 5, 10)),
        ("string", generators::string_graph(&word).0),
        ("rei", generators::rei_gadget_graph(&["a", "b"])),
    ]
}

fn sorted(mut rows: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    rows.sort();
    rows
}

#[test]
fn corpus_is_bit_identical_across_thread_counts_and_matches_reference() {
    let al = alphabet();
    let cfg = config();
    let mut gen = Gen::new(SEED);
    let graphs = graph_families(&mut gen);

    for qi in 0..7 {
        let text = random_constant_free_query_text(&mut gen);
        let query = parse_query(&text, &al)
            .unwrap_or_else(|e| panic!("corpus query must parse: {text:?}: {e}"));
        let pq = PreparedQuery::prepare(&query).unwrap();
        for (family, g) in &graphs {
            let what = format!("query {qi} {text:?} on {family}");
            // Ground truth 1: the classical reference engine (answer set).
            let (ref_nodes, ref_stats) = reference::eval_nodes_with_stats(&query, g, &cfg)
                .unwrap_or_else(|e| panic!("{what}: reference engine failed: {e}"));
            let ref_nodes = sorted(ref_nodes);
            // Ground truth 2: the sequential dense engine — the full-answer
            // run (witnesses included, order included; may stop at
            // `answer_limit`) and the node run, whose `verified` count is
            // mode-compatible with the reference engine's.
            let seq = pq.bind(g).unwrap();
            let (seq_answers, _) = seq.run(&cfg).unwrap();
            let (_, seq_nodes_stats) = seq.run_nodes(&cfg).unwrap();
            assert_eq!(
                seq_nodes_stats.verified, ref_stats.verified,
                "{what}: sequential dense verified count diverged from reference"
            );

            for &t in &THREAD_COUNTS {
                let plan = pq.bind_with(g, opts(t)).unwrap();
                let (answers, _) = plan.run(&cfg).unwrap();
                assert_eq!(
                    answers, seq_answers,
                    "{what}: answers (incl. witnesses and order) diverged at {t} threads"
                );
                let (nodes, stats) = plan.run_nodes(&cfg).unwrap();
                assert_eq!(
                    sorted(nodes),
                    ref_nodes,
                    "{what}: node answer set diverged from the reference engine at {t} threads"
                );
                assert_eq!(
                    stats.verified, ref_stats.verified,
                    "{what}: verified count diverged at {t} threads"
                );
            }
        }
    }
}

#[test]
fn membership_verdicts_match_reference_at_all_thread_counts() {
    let al = alphabet();
    let cfg = config();
    let mut gen = Gen::new(SEED ^ 0x51);
    const LANGS: [&str; 4] = ["a*", "(a|b)*", "a (a|b)*", "(a|b|c)* c"];

    for case in 0..12 {
        let edges = gen.range(4, 11);
        let db = random_graph(&mut gen, 5, edges);
        let lang = LANGS[gen.index(LANGS.len())];
        let text =
            format!("Ans(x, p1, p2) <- (x, p1, z), (z, p2, y), L(p1) = {lang}, R(p1, p2) = el");
        let query = parse_query(&text, &al).unwrap();
        let pq = PreparedQuery::prepare(&query).unwrap();

        let start = NodeId(gen.index(5) as u32);
        let paths1 = enumerate_paths(&db, start, 3, 8);
        let p1 = paths1[gen.index(paths1.len())].clone();
        let paths2 = enumerate_paths(&db, p1.end(), 3, 8);
        let p2 = paths2[gen.index(paths2.len())].clone();
        let nodes = [start];
        let tuple = [p1, p2];

        let expected = reference::check(&query, &db, &nodes, &tuple, &cfg).unwrap();
        for &t in &THREAD_COUNTS {
            let got = pq.bind_with(&db, opts(t)).unwrap().check(&nodes, &tuple, &cfg).unwrap();
            assert_eq!(
                got, expected,
                "case {case}: membership verdict diverged at {t} threads for {tuple:?}"
            );
        }
    }
}

#[test]
fn answer_automata_are_identical_across_thread_counts() {
    let al = alphabet();
    let cfg = config();
    let mut gen = Gen::new(SEED ^ 0xA7);

    for case in 0..6 {
        let edges = gen.range(5, 11);
        let db = random_graph(&mut gen, 5, edges);
        let query = parse_query("Ans(x, y, p1, p2) <- (x, p1, z), (z, p2, y), R(p1, p2) = el", &al)
            .unwrap();
        let pq = PreparedQuery::prepare(&query).unwrap();
        let (ref_nodes, _) = reference::eval_nodes_with_stats(&query, &db, &cfg).unwrap();
        for x in 0..5u32 {
            for y in 0..5u32 {
                let nodes = [NodeId(x), NodeId(y)];
                let baseline = pq.bind(&db).unwrap().answer_automaton(&nodes, &cfg).unwrap();
                assert_eq!(
                    !baseline.is_empty(),
                    ref_nodes.contains(&vec![NodeId(x), NodeId(y)]),
                    "case {case}: sequential emptiness at ({x},{y}) disagrees with reference"
                );
                for &t in &THREAD_COUNTS[1..] {
                    let aut =
                        pq.bind_with(&db, opts(t)).unwrap().answer_automaton(&nodes, &cfg).unwrap();
                    assert_eq!(
                        aut.is_empty(),
                        baseline.is_empty(),
                        "case {case}: emptiness at ({x},{y}) diverged at {t} threads"
                    );
                    assert_eq!(
                        aut.num_states(),
                        baseline.num_states(),
                        "case {case}: automaton shape at ({x},{y}) diverged at {t} threads"
                    );
                }
            }
        }
    }
}

/// Many-iteration nondeterminism smoke: the same heavy query, run 50 times
/// at 4 threads, must return the *identical* answer vector every time
/// (nodes, witness paths, order). An interning race — a state published
/// before its words are complete, a merge order depending on thread
/// scheduling — shows up here as a flaky diff long before it corrupts a
/// verdict.
#[test]
fn repeated_parallel_runs_are_deterministic() {
    let al = alphabet();
    let cfg = config();
    let mut gen = Gen::new(SEED ^ 0xF1);
    let db = random_graph(&mut gen, 8, 20);
    let text = "Ans(x0, x2, p0) <- (x0, p0, x1), (x1, p1, x2), \
                L(p0) = a (a|b)*, L(p1) = (a|b)* a, R(p0, p1) = eq";
    let query = parse_query(text, &al).unwrap();
    let pq = PreparedQuery::prepare(&query).unwrap();
    let plan = pq.bind_with(&db, opts(4)).unwrap();

    let (baseline, base_stats) = plan.run(&cfg).unwrap();
    let (seq_answers, seq_stats) = pq.bind(&db).unwrap().run(&cfg).unwrap();
    assert_eq!(baseline, seq_answers, "4-thread answers must match sequential");
    assert_eq!(base_stats.verified, seq_stats.verified);
    for run in 0..50 {
        let (answers, stats) = plan.run(&cfg).unwrap();
        assert_eq!(answers, baseline, "run {run}: answers changed between identical runs");
        assert_eq!(stats.verified, base_stats.verified, "run {run}: verified count changed");
    }
}

/// The tiny gate `scripts/check.sh --parallel-smoke` runs on every PR: a
/// handful of corpus queries on one graph, 4 threads vs the reference
/// engine. Fast enough to never be skipped.
#[test]
fn parallel_smoke_tiny_corpus() {
    let al = alphabet();
    let cfg = config();
    let mut gen = Gen::new(SEED ^ 0x5E);
    let db = random_graph(&mut gen, 4, 8);
    for _ in 0..5 {
        let text = random_constant_free_query_text(&mut gen);
        let query = parse_query(&text, &al).unwrap();
        let pq = PreparedQuery::prepare(&query).unwrap();
        let (ref_nodes, ref_stats) = reference::eval_nodes_with_stats(&query, &db, &cfg).unwrap();
        let (nodes, stats) = pq.bind_with(&db, opts(4)).unwrap().run_nodes(&cfg).unwrap();
        assert_eq!(sorted(nodes), sorted(ref_nodes), "smoke: answers diverged for {text:?}");
        assert_eq!(stats.verified, ref_stats.verified, "smoke: verified diverged for {text:?}");
    }
}
