//! Differential suite for the cost-based query planner.
//!
//! The planner (PR 6) may reorder the join, flip per-atom BFS direction,
//! and pin a BFS to a bound constant — but it must never change *what* a
//! query answers. This suite enforces that guarantee three ways:
//!
//! 1. A seeded corpus of random queries over graph families chosen so the
//!    cost-based and static planners actually disagree (rare-label
//!    languages, bound constants, chains with one selective atom). Every
//!    case is run under both planner modes, at every thread count in
//!    {1, 2, 4, 8}, and against the classical reference engine; answer
//!    sets and `verified` counts must be identical everywhere.
//! 2. Handcrafted instances where the divergence is *guaranteed* (a
//!    reverse-favored language, a pinnable bound constant, a selective
//!    chain), asserted via the `explain` surface: the two planners must
//!    produce different plans, and the suite as a whole must observe at
//!    least one divergent plan — so the corpus never silently degenerates
//!    into comparing a planner against itself.
//! 3. Pinned goldens of the `ExplainReport` rendering for three
//!    representative queries, so the EXPLAIN surface (join order,
//!    directions, pins, estimated vs actual cardinalities) stays stable.

use ecrpq::eval::{reference, EvalOptions, ExplainReport, PlannerMode, PreparedQuery};
use ecrpq::prelude::*;
use ecrpq_integration::corpus::{alphabet, random_constant_free_query_text};
use ecrpq_integration::prop::Gen;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 0x9_1A27_0006;

fn opts(planner: PlannerMode, threads: usize) -> EvalOptions {
    EvalOptions { planner, threads, min_parallel_level: 1 }
}

fn config() -> EvalConfig {
    EvalConfig { max_search_states: 100_000, ..EvalConfig::default() }
}

fn sorted(mut rows: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    rows.sort();
    rows
}

/// A seeded random graph over the corpus alphabet `{a, b, c}` with a skewed
/// label distribution (many `a`, few `b`, one `c` edge), so label frequency
/// actually matters to the cost model.
fn skewed_graph(gen: &mut Gen, nodes: usize) -> GraphDb {
    let mut db = GraphDb::new(alphabet());
    let ids = db.add_nodes(nodes);
    for _ in 0..nodes * 3 {
        let from = ids[gen.index(nodes)];
        let to = ids[gen.index(nodes)];
        db.add_edge(from, Symbol(0), to);
    }
    for _ in 0..nodes / 4 {
        let from = ids[gen.index(nodes)];
        let to = ids[gen.index(nodes)];
        db.add_edge(from, Symbol(1), to);
    }
    db.add_edge(ids[gen.index(nodes)], Symbol(2), ids[gen.index(nodes)]);
    db
}

/// True when the two planners chose observably different plans: a different
/// join order, or any atom with a different BFS direction or pin.
fn plans_differ(a: &ExplainReport, b: &ExplainReport) -> bool {
    a.join_order != b.join_order
        || a.atoms
            .iter()
            .zip(b.atoms.iter())
            .any(|(x, y)| x.direction != y.direction || x.pinned != y.pinned)
}

/// Runs one (query, graph) case under both planners at every thread count
/// and checks answers + `verified` against the reference engine. Returns
/// whether the two planners produced different plans for this case, or
/// `None` when the reference engine blows the search budget (no ground
/// truth — the corpus skips such cases).
fn check_case(what: &str, query: &Ecrpq, g: &GraphDb, cfg: &EvalConfig) -> Option<bool> {
    let Ok((ref_nodes, ref_stats)) = reference::eval_nodes_with_stats(query, g, cfg) else {
        return None;
    };
    let ref_nodes = sorted(ref_nodes);

    let pq = PreparedQuery::prepare(query).unwrap();
    for planner in [PlannerMode::CostBased, PlannerMode::Static] {
        for &t in &THREAD_COUNTS {
            let plan = pq.bind_with(g, opts(planner, t)).unwrap();
            let (nodes, stats) = plan.run_nodes(cfg).unwrap();
            assert_eq!(
                sorted(nodes),
                ref_nodes,
                "{what}: answer set diverged from reference ({planner:?}, {t} threads)"
            );
            assert_eq!(
                stats.verified, ref_stats.verified,
                "{what}: verified count diverged from reference ({planner:?}, {t} threads)"
            );
        }
    }

    let cost = pq.bind_with(g, opts(PlannerMode::CostBased, 1)).unwrap().explain(cfg).unwrap();
    let stat = pq.bind_with(g, opts(PlannerMode::Static, 1)).unwrap().explain(cfg).unwrap();
    assert_eq!(cost.answers, stat.answers, "{what}: explain answer counts diverged");
    Some(plans_differ(&cost, &stat))
}

#[test]
fn corpus_answers_identical_across_planners_threads_and_reference() {
    let al = alphabet();
    let cfg = config();
    let mut gen = Gen::new(SEED);
    let mut divergent = 0usize;

    let graphs = vec![
        ("skewed", skewed_graph(&mut gen, 12)),
        ("random", {
            let mut db = GraphDb::new(alphabet());
            let ids = db.add_nodes(6);
            for _ in 0..14 {
                let from = ids[gen.index(6)];
                let label = Symbol(gen.index(3) as u32);
                let to = ids[gen.index(6)];
                db.add_edge(from, label, to);
            }
            db
        }),
    ];

    for qi in 0..10 {
        let text = random_constant_free_query_text(&mut gen);
        let query = parse_query(&text, &al)
            .unwrap_or_else(|e| panic!("corpus query must parse: {text:?}: {e}"));
        for (family, g) in &graphs {
            let what = format!("query {qi} {text:?} on {family}");
            if check_case(&what, &query, g, &cfg) == Some(true) {
                divergent += 1;
            }
        }
    }
    assert!(
        divergent >= 1,
        "corpus never produced a plan divergence — the differential is vacuous"
    );
}

/// A reverse-favored instance: dense `a` edges, a single `b` edge, language
/// `a* b`. The target-side frontier (targets of `b`) is one node while the
/// source-side frontier is nearly the whole graph, so the cost planner must
/// run the BFS backwards; the static planner always goes forward.
#[test]
fn reverse_favored_language_flips_direction_but_not_answers() {
    let cfg = config();
    let mut gen = Gen::new(SEED ^ 0xB);
    let mut db = GraphDb::new(alphabet());
    let ids = db.add_nodes(40);
    for _ in 0..120 {
        let from = ids[gen.index(40)];
        let to = ids[gen.index(40)];
        db.add_edge(from, Symbol(0), to);
    }
    db.add_edge(ids[3], Symbol(1), ids[7]);

    let query = parse_query("Ans(x0, x1) <- (x0, p0, x1), L(p0) = a* b", &alphabet()).unwrap();
    let diverged = check_case("reverse-favored a* b", &query, &db, &cfg)
        .expect("reference engine must stay within budget");
    assert!(diverged, "cost planner should flip the BFS direction on a reverse-favored instance");

    let pq = PreparedQuery::prepare(&query).unwrap();
    let report = pq.bind_with(&db, opts(PlannerMode::CostBased, 1)).unwrap().explain(&cfg).unwrap();
    assert_eq!(report.atoms[0].direction.to_string(), "reverse");
}

/// A pinnable bound constant: with `x1 = :v1` the planner must anchor the
/// BFS at the constant (reverse from `v1`) instead of scanning every source.
#[test]
fn bound_constant_pins_the_bfs_without_changing_answers() {
    let cfg = config();
    let db = generators::rei_gadget_graph(&["a", "b"]);
    let al = db.alphabet().clone();
    let query = parse_query("Ans(x0) <- (x0, p0, x1), L(p0) = a*, x1 = :v1", &al).unwrap();
    check_case("pinned constant a* -> :v1", &query, &db, &cfg)
        .expect("reference engine must stay within budget");

    let pq = PreparedQuery::prepare(&query).unwrap();
    let report = pq.bind_with(&db, opts(PlannerMode::CostBased, 1)).unwrap().explain(&cfg).unwrap();
    assert_eq!(report.atoms[0].pinned.as_deref(), Some("v1"), "BFS must be pinned to v1");
    assert_eq!(report.atoms[0].direction.to_string(), "reverse");
    let unpinned = pq.bind_with(&db, opts(PlannerMode::Static, 1)).unwrap().explain(&cfg).unwrap();
    assert!(
        report.atoms[0].actual_pairs <= unpinned.atoms[0].actual_pairs,
        "pinning must not materialize more pairs than the full scan"
    );
}

/// A three-atom chain with one highly selective atom (`c`, a single edge):
/// the cost planner should start the join at the selective end, diverging
/// from the static connectivity order, with identical answers.
#[test]
fn selective_chain_reorders_the_join_without_changing_answers() {
    let cfg = config();
    let mut gen = Gen::new(SEED ^ 0xC);
    let db = skewed_graph(&mut gen, 16);
    let query = parse_query(
        "Ans(x0, x3) <- (x0, p0, x1), (x1, p1, x2), (x2, p2, x3), \
         L(p0) = a*, L(p1) = b, L(p2) = c",
        &alphabet(),
    )
    .unwrap();
    check_case("selective chain a*/b/c", &query, &db, &cfg)
        .expect("reference engine must stay within budget");

    let pq = PreparedQuery::prepare(&query).unwrap();
    let cost = pq.bind_with(&db, opts(PlannerMode::CostBased, 1)).unwrap().explain(&cfg).unwrap();
    let stat = pq.bind_with(&db, opts(PlannerMode::Static, 1)).unwrap().explain(&cfg).unwrap();
    assert!(
        plans_differ(&cost, &stat),
        "cost planner should reorder the selective chain (cost: {:?}, static: {:?})",
        cost.join_order,
        stat.join_order
    );
    // The selective `c` atom's estimate must be the smallest of the three.
    let est: Vec<f64> = cost.atoms.iter().map(|a| a.est_pairs).collect();
    assert!(est[2] <= est[0] && est[2] <= est[1], "c-atom must be estimated cheapest: {est:?}");
}

// ---------------------------------------------------------------------------
// Pinned EXPLAIN goldens
// ---------------------------------------------------------------------------

fn explain_text(query_text: &str, db: &GraphDb, planner: PlannerMode) -> String {
    let al = db.alphabet().clone();
    let query = parse_query(query_text, &al).unwrap();
    let pq = PreparedQuery::prepare(&query).unwrap();
    pq.bind_with(db, opts(planner, 1)).unwrap().explain(&config()).unwrap().to_string()
}

#[test]
fn explain_golden_cycle_cost_based() {
    let db = generators::cycle_graph(6, "a");
    let text =
        explain_text("Ans(x0, x1) <- (x0, p0, x1), L(p0) = a a", &db, PlannerMode::CostBased);
    let expected = "plan (cost-based)\n\
                    \x20 join order: x0, x1\n\
                    \x20 atom p0: (x0) -[p0]-> (x1) dir=forward pin=- states=5 est_pairs=36.0 actual_pairs=6\n\
                    \x20 totals: candidates=6 verified=6 search_states=0 answers=6\n";
    assert_eq!(text, expected, "cycle golden drifted:\n{text}");
}

#[test]
fn explain_golden_pinned_constant() {
    let db = generators::rei_gadget_graph(&["a", "b"]);
    let text =
        explain_text("Ans(x0) <- (x0, p0, x1), L(p0) = a*, x1 = :v1", &db, PlannerMode::CostBased);
    let expected = "plan (cost-based)\n\
                    \x20 join order: x1, x0\n\
                    \x20 atom p0: (x0) -[p0]-> (x1) dir=reverse pin=v1 states=3 est_pairs=3.0 actual_pairs=3\n\
                    \x20 totals: candidates=3 verified=3 search_states=0 answers=3\n";
    assert_eq!(text, expected, "pinned-constant golden drifted:\n{text}");
}

#[test]
fn explain_golden_static_mode() {
    let db = generators::cycle_graph(6, "a");
    let text = explain_text("Ans(x0, x1) <- (x0, p0, x1), L(p0) = a a", &db, PlannerMode::Static);
    let expected = "plan (static)\n\
                    \x20 join order: x1, x0\n\
                    \x20 atom p0: (x0) -[p0]-> (x1) dir=forward pin=- states=5 est_pairs=- actual_pairs=6\n\
                    \x20 totals: candidates=6 verified=6 search_states=0 answers=6\n";
    assert_eq!(text, expected, "static golden drifted:\n{text}");
}
