//! Integration tests for the extensions of Sections 6.3 and 8: the length
//! abstraction `Q_len`, acyclic evaluation, negation (`CRPQ¬` and bounded
//! `ECRPQ¬`), and the interplay of these features.

use ecrpq::eval::negation::{eval_crpq_neg, eval_formula_bounded, Assignment, Formula};
use ecrpq::eval::{self, length::eval_qlen, EvalConfig};
use ecrpq::prelude::*;
use ecrpq_graph::generators;

fn cfg() -> EvalConfig {
    EvalConfig::default()
}

/// Q_len is an over-approximation of the full query (Theorem 6.7 setting):
/// every real answer survives the abstraction.
#[test]
fn qlen_over_approximates_on_random_graphs() {
    for seed in [1u64, 2, 3] {
        let g = generators::random_graph(14, 1.8, &["a", "b"], seed);
        let al = g.alphabet().clone();
        let q = Ecrpq::builder(&al)
            .head_nodes(&["x", "y"])
            .atom("x", "p1", "z")
            .atom("z", "p2", "y")
            .language("p1", "a+")
            .language("p2", "b+")
            .relation(builtin::equality(&al), &["p1", "p2"])
            .build()
            .unwrap();
        let full = eval::eval_nodes(&q, &g, &cfg()).unwrap();
        let qlen = eval_qlen(&q, &g, &cfg()).unwrap();
        for ans in &full {
            assert!(qlen.contains(ans), "seed {seed}: {ans:?} lost by the length abstraction");
        }
        // `eq`'s abstraction is `el`, and a+ vs b+ labels can never be equal,
        // so the abstraction is strictly coarser whenever there are answers
        // with |p1| = |p2| but different labels — which is exactly qlen \ full.
        for ans in &qlen {
            if !full.contains(ans) {
                // cross-check with the el query: it must accept the pair
                let el_q = Ecrpq::builder(&al)
                    .head_nodes(&["x", "y"])
                    .atom("x", "p1", "z")
                    .atom("z", "p2", "y")
                    .language("p1", "a+")
                    .language("p2", "b+")
                    .relation(builtin::equal_length(&al), &["p1", "p2"])
                    .build()
                    .unwrap();
                let el_answers = eval::eval_nodes(&el_q, &g, &cfg()).unwrap();
                assert!(el_answers.contains(ans));
            }
        }
    }
}

/// The a^n b^n c^n query under Q_len still requires the three segment lengths
/// to be equal, so it rejects unbalanced strings.
#[test]
fn qlen_on_anbncn() {
    let q_al = Alphabet::from_labels(["a", "b", "c"]);
    let q = ecrpq::expressiveness::anbncn_query(&q_al).unwrap();
    let (g, first, last) = generators::string_graph(&["a", "a", "b", "b", "c", "c"]);
    let answers = eval_qlen(&q, &g, &cfg()).unwrap();
    assert!(answers.contains(&vec![first, last]));
    let (g2, first2, last2) = generators::string_graph(&["a", "a", "b", "c", "c"]);
    let answers2 = eval_qlen(&q, &g2, &cfg()).unwrap();
    assert!(!answers2.contains(&vec![first2, last2]));
}

/// Acyclic CRPQ evaluation agrees with the generic evaluator across several
/// random graphs and chain lengths (Theorem 6.5, first part).
#[test]
fn acyclic_vs_generic_on_chains() {
    for (seed, len) in [(1u64, 2usize), (2, 3), (3, 4)] {
        let g = generators::random_graph(16, 1.8, &["a", "b"], seed);
        let al = g.alphabet().clone();
        let mut builder = Ecrpq::builder(&al).head_nodes(&["x0", &format!("x{len}")]);
        for i in 0..len {
            builder = builder
                .atom(&format!("x{i}"), &format!("p{i}"), &format!("x{}", i + 1))
                .language(&format!("p{i}"), if i % 2 == 0 { "a+" } else { "b+" });
        }
        let q = builder.build().unwrap();
        assert!(q.is_acyclic() && q.is_crpq());
        let mut generic = eval::eval_nodes(&q, &g, &cfg()).unwrap();
        let mut yann = eval::acyclic::eval_acyclic_crpq(&q, &g, &cfg()).unwrap();
        generic.sort();
        yann.sort();
        assert_eq!(generic, yann, "seed {seed}, len {len}");
    }
}

/// CRPQ¬: "no path between x and y is labeled in L" — cross-checked against
/// the positive query.
#[test]
fn crpq_negation_complements_positive_query() {
    let g = generators::random_graph(10, 1.5, &["a", "b"], 17);
    let al = g.alphabet().clone();
    let lang = "a b+";
    let positive = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p", "y")
        .language("p", lang)
        .build()
        .unwrap();
    let pos_answers = eval::eval_nodes(&positive, &g, &cfg()).unwrap();
    let phi = Formula::exists_path(
        "pi",
        Formula::edge("x", "pi", "y").and(Formula::lang("pi", lang, &al).unwrap()),
    )
    .not();
    for x in g.nodes().take(5) {
        for y in g.nodes().take(5) {
            let asg = Assignment::empty().with_node("x", x).with_node("y", y);
            let no_path = eval_crpq_neg(&phi, &g, &al, &asg, &cfg()).unwrap();
            assert_eq!(
                no_path,
                !pos_answers.contains(&vec![x, y]),
                "disagreement at ({x:?}, {y:?})"
            );
        }
    }
}

/// The CRPQ¬ example from the paper: pairs such that every path between them
/// satisfies a language (trivially true when there is no path at all).
#[test]
fn universal_quantification_over_paths() {
    let (g, first, last) = generators::string_graph(&["a", "a", "b"]);
    let al = g.alphabet().clone();
    let phi = Formula::forall_path(
        "pi",
        Formula::edge("x", "pi", "y").not().or(Formula::lang("pi", "a* b?", &al).unwrap()),
    );
    // first→last: the only path is aab ∈ a*b? … wait aab = a a b, which is in a*b?.
    let asg = Assignment::empty().with_node("x", first).with_node("y", last);
    assert!(eval_crpq_neg(&phi, &g, &al, &asg, &cfg()).unwrap());
    // last→first: no paths at all, so the universal holds vacuously.
    let asg = Assignment::empty().with_node("x", last).with_node("y", first);
    assert!(eval_crpq_neg(&phi, &g, &al, &asg, &cfg()).unwrap());
    // A stricter language that excludes the existing path makes it false.
    let phi_strict = Formula::forall_path(
        "pi",
        Formula::edge("x", "pi", "y").not().or(Formula::lang("pi", "b+", &al).unwrap()),
    );
    let asg = Assignment::empty().with_node("x", first).with_node("y", last);
    assert!(!eval_crpq_neg(&phi_strict, &g, &al, &asg, &cfg()).unwrap());
}

/// Bounded ECRPQ¬ on a DAG is exact: existence of two label-equal paths to
/// different targets, and its negation.
#[test]
fn bounded_ecrpq_negation_on_dags() {
    let mut g = GraphDb::empty();
    let r = g.add_named_node("r");
    let u = g.add_named_node("u");
    let v = g.add_named_node("v");
    let w = g.add_named_node("w");
    g.add_edge_labeled(r, "a", u);
    g.add_edge_labeled(u, "b", v);
    g.add_edge_labeled(u, "b", w);
    let al = g.alphabet().clone();
    let eq = builtin::equality(&al);
    let two_equal = Formula::exists_path(
        "p1",
        Formula::exists_path(
            "p2",
            Formula::edge("x", "p1", "y")
                .and(Formula::edge("x", "p2", "z"))
                .and(Formula::node_eq("y", "z").not())
                .and(Formula::rel(eq, &["p1", "p2"]))
                .and(Formula::lang("p1", "a b", &al).unwrap()),
        ),
    );
    let quantified = Formula::exists_node("y", Formula::exists_node("z", two_equal));
    // From r: the paths a·b to v and a·b to w are label-equal but end differently.
    let asg = Assignment::empty().with_node("x", r);
    assert!(eval_formula_bounded(&quantified, &g, &al, &asg, g.num_nodes()).unwrap());
    // Its negation is false from r and true from v (no outgoing paths).
    let negated = quantified.clone().not();
    assert!(!eval_formula_bounded(&negated, &g, &al, &asg, g.num_nodes()).unwrap());
    let asg_v = Assignment::empty().with_node("x", v);
    assert!(eval_formula_bounded(&negated, &g, &al, &asg_v, g.num_nodes()).unwrap());
}

/// Mixing features: a query with both a regular relation and a linear length
/// constraint (Section 8.2 on top of Section 3).
#[test]
fn relation_plus_linear_constraint() {
    let g = generators::cycle_graph(6, "a");
    let al = g.alphabet().clone();
    use ecrpq::eval::counts::length;
    use ecrpq_automata::semilinear::CmpOp;
    let c = length("p1", CmpOp::Ge, 3);
    let q = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p1", "z")
        .atom("z", "p2", "y")
        .relation(builtin::equal_length(&al), &["p1", "p2"])
        .linear_constraint(c.terms, c.op, c.constant)
        .build()
        .unwrap();
    let config = EvalConfig { max_convolution_steps: Some(16), ..cfg() };
    let answers = eval::eval_nodes(&q, &g, &config).unwrap();
    // Equal-length halves of total length 2L with L ≥ 3: in a 6-cycle the
    // endpoint sits 2L mod 6 ∈ {0, 2, 4} steps after the start, so every node
    // reaches itself and exactly the nodes at even distance.
    assert!(!answers.is_empty());
    for v in g.nodes() {
        assert!(answers.contains(&vec![v, v]));
    }
    for a in &answers {
        let offset = (a[1].0 + 6 - a[0].0) % 6;
        assert_eq!(offset % 2, 0, "answer {a:?} has odd cycle offset");
    }
    assert_eq!(answers.len(), 18);
}
