//! Smoke test: every `examples/*.rs` program builds (guaranteed by `cargo
//! test` compiling all `[[example]]` targets) and runs to successful exit.
//!
//! The test executes the example binaries that cargo has already built into
//! the target directory — no nested cargo invocation, so it stays fast and
//! offline. When invoked in a filtered way that skips building examples
//! (e.g. `cargo test --test examples_smoke` on a cold target dir), the test
//! skips with a note instead of failing.

use std::path::PathBuf;
use std::process::Command;

const EXAMPLES: [&str; 6] = [
    "quickstart",
    "pattern_matching",
    "route_planning",
    "semantic_web",
    "sequence_alignment",
    "server_roundtrip",
];

/// The `examples/` directory of the active build profile.
fn examples_dir() -> PathBuf {
    let target = match std::env::var("CARGO_TARGET_DIR") {
        Ok(d) => PathBuf::from(d),
        // crates/integration/../../target
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"),
    };
    let profile = if cfg!(debug_assertions) { "debug" } else { "release" };
    target.join(profile).join("examples")
}

#[test]
fn every_example_runs_successfully() {
    let dir = examples_dir();
    let exe = std::env::consts::EXE_SUFFIX;
    let missing: Vec<&str> =
        EXAMPLES.iter().copied().filter(|e| !dir.join(format!("{e}{exe}")).exists()).collect();
    if missing.len() == EXAMPLES.len() {
        eprintln!("skipping examples smoke test: no example binaries under {dir:?} (run `cargo test` from the workspace root to build them)");
        return;
    }
    assert!(missing.is_empty(), "some example binaries are missing from {dir:?}: {missing:?}");
    for example in EXAMPLES {
        let path = dir.join(format!("{example}{exe}"));
        let output = Command::new(&path)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {path:?}: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` exited with {}\nstdout:\n{}\nstderr:\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(!output.stdout.is_empty(), "example `{example}` printed nothing on stdout");
    }
}
