//! Integration tests for the application scenarios of Section 4 and
//! Section 8.2 of the paper: semantic-web associations, approximate matching
//! and alignment, and route finding with linear constraints.

use ecrpq::eval::counts::{fraction_at_least, label_count};
use ecrpq::eval::{self, EvalConfig};
use ecrpq::prelude::*;
use ecrpq_automata::builtin::{edit_distance_leq, levenshtein, rho_isomorphism};
use ecrpq_automata::semilinear::CmpOp;
use ecrpq_graph::generators::{self, sequence_pair_graph};

fn cfg() -> EvalConfig {
    EvalConfig::default()
}

/// ρ-isoAssociation (Section 4): two nodes are associated iff they originate
/// ρ-isomorphic property sequences.
#[test]
fn rho_iso_association_end_to_end() {
    let mut g = GraphDb::empty();
    // worksAt ≺ affiliatedWith; alice-worksAt->acme, bob-affiliatedWith->initech
    for (s, p, o) in [
        ("alice", "worksAt", "acme"),
        ("bob", "affiliatedWith", "initech"),
        ("carol", "knows", "alice"),
    ] {
        let sn = g.add_named_node(s);
        let on = g.add_named_node(o);
        g.add_edge_labeled(sn, p, on);
    }
    let al = g.alphabet().clone();
    let sub = vec![(al.sym("worksAt"), al.sym("affiliatedWith"))];
    let rho = rho_isomorphism(&al, &sub, false);
    let q = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p1", "z1")
        .atom("y", "p2", "z2")
        .language("p1", ". .*")
        .language("p2", ". .*")
        .relation(rho, &["p1", "p2"])
        .build()
        .unwrap();
    let answers = eval::eval_nodes(&q, &g, &cfg()).unwrap();
    let alice = g.node_by_name("alice").unwrap();
    let bob = g.node_by_name("bob").unwrap();
    let carol = g.node_by_name("carol").unwrap();
    assert!(answers.contains(&vec![alice, bob]));
    assert!(answers.contains(&vec![bob, alice]));
    // carol's only sequence starts with `knows`, which is not a subproperty
    // of anything, so carol is associated with nobody (not even herself,
    // since reflexive closure was not requested).
    assert!(!answers.iter().any(|a| a[0] == carol || a[1] == carol));
}

/// Bounded edit distance agrees with dynamic-programming Levenshtein when
/// queried through the full ECRPQ pipeline over sequence graphs.
#[test]
fn edit_distance_queries_match_levenshtein() {
    let pairs: Vec<(Vec<&str>, Vec<&str>)> = vec![
        (vec!["A", "C", "G"], vec!["A", "C", "G"]),
        (vec!["A", "C", "G"], vec!["A", "G"]),
        (vec!["A", "C", "G", "T"], vec!["T", "G", "C", "A"]),
        (vec!["A"], vec!["C", "C"]),
    ];
    for (seq1, seq2) in pairs {
        let w = sequence_pair_graph(&seq1, &seq2, false);
        let al = w.graph.alphabet().clone();
        let s1: Vec<Symbol> = seq1.iter().map(|l| al.sym(l)).collect();
        let s2: Vec<Symbol> = seq2.iter().map(|l| al.sym(l)).collect();
        let true_distance = levenshtein(&s1, &s2);
        // k is capped at 2: the k=3 relation over the 4-letter DNA alphabet
        // makes this sweep take a minute while adding no new assertion — the
        // boundary `distance == k` is already hit at k=2 by the ("A", "CC")
        // pair, and the reversed pair stays negative for every k.
        for k in 0..=2usize {
            let q = Ecrpq::builder(&al)
                .atom("x1", "p1", "y1")
                .atom("x2", "p2", "y2")
                .relation(edit_distance_leq(&al, k), &["p1", "p2"])
                .bind_node("x1", "s0")
                .bind_node("y1", &format!("s{}", seq1.len()))
                .bind_node("x2", "t0")
                .bind_node("y2", &format!("t{}", seq2.len()))
                .build()
                .unwrap();
            let within = eval::eval_boolean(&q, &w.graph, &cfg()).unwrap();
            assert_eq!(
                within,
                true_distance <= k,
                "seq1={seq1:?} seq2={seq2:?} k={k} true={true_distance}"
            );
        }
    }
}

/// The alignment query of Section 4 returns the actual mismatch when two
/// sequences differ by one substitution.
#[test]
fn alignment_extracts_the_mismatch() {
    let seq1 = ["A", "C", "G"];
    let seq2 = ["A", "T", "G"];
    let w = sequence_pair_graph(&seq1, &seq2, true);
    let g = &w.graph;
    let al = g.alphabet().clone();
    let eq = builtin::equality(&al);
    let mut expr = String::new();
    for a in ["A", "C", "G", "T", "eps"] {
        for b in ["A", "C", "G", "T", "eps"] {
            if a != b {
                if !expr.is_empty() {
                    expr.push('|');
                }
                expr.push_str(&format!("<{a},{b}>"));
            }
        }
    }
    let mismatch = RegularRelation::from_regex(&expr, &al, 2).unwrap();
    let q = Ecrpq::builder(&al)
        .head_paths(&["a1", "b1"])
        .atom("x0", "m0", "x1")
        .atom("x1", "a1", "x2")
        .atom("x2", "m1", "x3")
        .atom("y0", "n0", "y1")
        .atom("y1", "b1", "y2")
        .atom("y2", "n1", "y3")
        .relation(eq.clone(), &["m0", "n0"])
        .relation(eq, &["m1", "n1"])
        .relation(mismatch, &["a1", "b1"])
        .bind_node("x0", "s0")
        .bind_node("x3", "s3")
        .bind_node("y0", "t0")
        .bind_node("y3", "t3")
        .build()
        .unwrap();
    let results = eval::eval_with_paths(&q, g, &EvalConfig { answer_limit: 5, ..cfg() }).unwrap();
    assert!(!results.is_empty());
    // At least one witness must pinpoint the C-vs-T substitution at position 2.
    let c = al.sym("C");
    let t = al.sym("T");
    assert!(results
        .iter()
        .any(|ans| { ans.paths[0].label() == [c] && ans.paths[1].label() == [t] }));
}

/// Route finding with occurrence constraints (Section 8.2): fractions of the
/// journey per airline, and hard label-count limits.
#[test]
fn route_finding_with_occurrence_constraints() {
    // Two routes from src to dst: 4 SQ segments, or 1 SQ + 3 BA segments.
    let mut g = GraphDb::empty();
    let src = g.add_named_node("src");
    let dst = g.add_named_node("dst");
    let mut prev = src;
    for i in 0..3 {
        let n = g.add_named_node(&format!("sq{i}"));
        g.add_edge_labeled(prev, "SQ", n);
        prev = n;
    }
    g.add_edge_labeled(prev, "SQ", dst);
    let m = g.add_named_node("m0");
    g.add_edge_labeled(src, "SQ", m);
    let mut prev = m;
    for i in 0..2 {
        let n = g.add_named_node(&format!("ba{i}"));
        g.add_edge_labeled(prev, "BA", n);
        prev = n;
    }
    g.add_edge_labeled(prev, "BA", dst);
    let al = g.alphabet().clone();

    let with_constraints = |constraints: Vec<ecrpq::query::QLinearConstraint>| {
        let mut b =
            Ecrpq::builder(&al).atom("x", "p", "y").bind_node("x", "src").bind_node("y", "dst");
        for c in constraints {
            b = b.linear_constraint(c.terms, c.op, c.constant);
        }
        b.build().unwrap()
    };
    let config = EvalConfig { max_convolution_steps: Some(16), ..cfg() };
    // 75% SQ is achievable (all-SQ route), 100% too; with "at least 1 BA" the
    // best is 25% SQ, so 75% becomes impossible.
    assert!(eval::eval_boolean(
        &with_constraints(vec![fraction_at_least("p", "SQ", 75)]),
        &g,
        &config
    )
    .unwrap());
    assert!(eval::eval_boolean(
        &with_constraints(vec![fraction_at_least("p", "SQ", 100)]),
        &g,
        &config
    )
    .unwrap());
    assert!(!eval::eval_boolean(
        &with_constraints(vec![
            fraction_at_least("p", "SQ", 75),
            label_count("p", "BA", CmpOp::Ge, 1),
        ]),
        &g,
        &config
    )
    .unwrap());
    // Avoiding SQ entirely is impossible (both routes start with SQ).
    assert!(!eval::eval_boolean(
        &with_constraints(vec![label_count("p", "SQ", CmpOp::Le, 0)]),
        &g,
        &config
    )
    .unwrap());
}

/// The flight-network generator plus fraction constraints at scale (smoke
/// test for the benchmark workload).
#[test]
fn flight_network_workload_smoke() {
    let g = generators::flight_network(6, &["SQ", "BA"], 20, 2, 1);
    let al = g.alphabet().clone();
    let c = fraction_at_least("p", "SQ", 50);
    let q = Ecrpq::builder(&al)
        .atom("x", "p", "y")
        .bind_node("x", "city0")
        .bind_node("y", "city1")
        .linear_constraint(c.terms, c.op, c.constant)
        .build()
        .unwrap();
    let config = EvalConfig { max_convolution_steps: Some(20), ..cfg() };
    // Either answer is fine; the point is that evaluation terminates cleanly.
    let _ = eval::eval_boolean(&q, &g, &config).unwrap();
}
