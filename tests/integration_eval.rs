//! Cross-crate integration tests for the core evaluation pipeline: the worked
//! examples of Sections 1 and 3 of the paper, CRPQ/ECRPQ agreement on their
//! common fragment, path outputs, membership checking, and answer automata.

use ecrpq::eval::{self, answers, EvalConfig};
use ecrpq::prelude::*;
use ecrpq_graph::generators;

fn cfg() -> EvalConfig {
    EvalConfig::default()
}

/// The introduction's motivating query: scientists with same-length advisor
/// chains to a common academic ancestor.
#[test]
fn same_generation_over_academic_genealogy() {
    let g = generators::academic_genealogy(20, 3);
    let al = g.alphabet().clone();
    let q = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p1", "z")
        .atom("y", "p2", "z")
        .language("p1", "advisor+")
        .language("p2", "advisor+")
        .relation(builtin::equal_length(&al), &["p1", "p2"])
        .build()
        .unwrap();
    let answers = eval::eval_nodes(&q, &g, &cfg()).unwrap();
    // Sanity: the relation is symmetric and reflexive on people with advisors.
    for a in &answers {
        assert!(answers.contains(&vec![a[1], a[0]]), "symmetry violated for {a:?}");
    }
    // Everyone with at least one advisor is same-generation with themselves.
    for v in g.nodes() {
        if !g.out_edges(v).is_empty() {
            assert!(answers.contains(&vec![v, v]));
        }
    }
}

/// The squares query from Section 1 on an explicit graph where the only
/// squared path label is `ab·ab`.
#[test]
fn squares_query_on_handmade_graph() {
    let (g, first, last) = generators::string_graph(&["a", "b", "a", "b"]);
    let al = g.alphabet().clone();
    let q = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p1", "z")
        .atom("z", "p2", "y")
        .relation(builtin::equality(&al), &["p1", "p2"])
        .build()
        .unwrap();
    let answers = eval::eval_nodes(&q, &g, &cfg()).unwrap();
    // (first, last) via ab|ab, plus every trivial (v, v) pair via empty paths.
    assert!(answers.contains(&vec![first, last]));
    for v in g.nodes() {
        assert!(answers.contains(&vec![v, v]));
    }
    // No other non-trivial pair: aba cannot be split into equal halves, etc.
    let nontrivial: Vec<_> = answers.iter().filter(|a| a[0] != a[1]).collect();
    assert_eq!(nontrivial.len(), 1);
}

/// CRPQs evaluated through the generic ECRPQ machinery agree with the
/// dedicated acyclic evaluator and with a naive path-enumeration reference.
#[test]
fn crpq_three_way_agreement() {
    let g = generators::random_graph(18, 2.0, &["a", "b", "c"], 99);
    let al = g.alphabet().clone();
    let q = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p1", "z")
        .atom("z", "p2", "y")
        .language("p1", "a (a|b)*")
        .language("p2", "c")
        .build()
        .unwrap();
    let mut generic = eval::eval_nodes(&q, &g, &cfg()).unwrap();
    let mut acyclic = eval::acyclic::eval_acyclic_crpq(&q, &g, &cfg()).unwrap();
    generic.sort();
    acyclic.sort();
    assert_eq!(generic, acyclic);

    // Naive reference: enumerate all paths up to length 6 and join by hand.
    let a_lang = Regex::parse("a (a|b)*").unwrap().compile(&al).unwrap();
    let c_lang = Regex::parse("c").unwrap().compile(&al).unwrap();
    let mut reference: Vec<Vec<NodeId>> = Vec::new();
    for x in g.nodes() {
        for p1 in ecrpq_graph::path::enumerate_paths(&g, x, 6, 100_000) {
            if !a_lang.accepts(p1.label()) {
                continue;
            }
            for p2 in ecrpq_graph::path::enumerate_paths(&g, p1.end(), 1, 100_000) {
                if c_lang.accepts(p2.label()) && !reference.contains(&vec![x, p2.end()]) {
                    reference.push(vec![x, p2.end()]);
                }
            }
        }
    }
    reference.sort();
    // The naive reference bounds path length by 6, so it can only miss
    // answers, never invent them.
    for r in &reference {
        assert!(generic.contains(r), "reference answer {r:?} missing from evaluator output");
    }
}

/// Path outputs: witnesses returned by eval_with_paths are valid paths, match
/// the query's constraints, and are accepted by the membership check.
#[test]
fn witness_paths_are_consistent() {
    let g = generators::cycle_graph(5, "a");
    let al = g.alphabet().clone();
    let q = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .head_paths(&["p1", "p2"])
        .atom("x", "p1", "z")
        .atom("z", "p2", "y")
        .language("p1", "a+")
        .language("p2", "a+")
        .relation(builtin::equal_length(&al), &["p1", "p2"])
        .build()
        .unwrap();
    let config = EvalConfig { answer_limit: 25, ..cfg() };
    let results = eval::eval_with_paths(&q, &g, &config).unwrap();
    assert!(!results.is_empty());
    for ans in &results {
        assert_eq!(ans.paths.len(), 2);
        assert!(ans.paths[0].is_valid_in(&g));
        assert!(ans.paths[1].is_valid_in(&g));
        assert_eq!(ans.paths[0].len(), ans.paths[1].len());
        assert!(!ans.paths[0].is_empty());
        assert_eq!(ans.paths[0].start(), ans.nodes[0]);
        assert_eq!(ans.paths[1].end(), ans.nodes[1]);
        // the membership check agrees
        assert!(eval::check(&q, &g, &ans.nodes, &ans.paths, &config).unwrap());
    }
}

/// The membership check rejects tuples that violate the relations.
#[test]
fn membership_check_rejects_bad_tuples() {
    let (g, first, last) = generators::string_graph(&["a", "a", "b"]);
    let al = g.alphabet().clone();
    let q = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .head_paths(&["p1", "p2"])
        .atom("x", "p1", "z")
        .atom("z", "p2", "y")
        .relation(builtin::equal_length(&al), &["p1", "p2"])
        .build()
        .unwrap();
    let a = al.sym("a");
    let b = al.sym("b");
    let n = |i: u32| NodeId(i);
    // |p1| = 2, |p2| = 1: violates el.
    let p1 = Path::new(vec![n(0), n(1), n(2)], vec![a, a]);
    let p2 = Path::new(vec![n(2), n(3)], vec![b]);
    assert!(!eval::check(&q, &g, &[first, last], &[p1.clone(), p2], &cfg()).unwrap());
    // A non-path (wrong edge) is rejected.
    let bogus = Path::new(vec![n(0), n(3)], vec![a]);
    assert!(!eval::check(&q, &g, &[first, last], &[p1, bogus], &cfg()).unwrap());
    // A correct split of odd length does not exist, but (1,1) around the
    // middle works for the substring "a b" from node 1.
    let p1 = Path::new(vec![n(1), n(2)], vec![a]);
    let p2 = Path::new(vec![n(2), n(3)], vec![b]);
    assert!(eval::check(&q, &g, &[n(1), n(3)], &[p1, p2], &cfg()).unwrap());
}

/// Theorem 5.1 / Proposition 5.2: the answer automaton for a node tuple
/// accepts exactly the witness tuples the evaluator returns (spot-checked),
/// and rejects perturbed tuples.
#[test]
fn answer_automaton_cross_check() {
    let g = generators::cycle_graph(4, "a");
    let al = g.alphabet().clone();
    let q = Ecrpq::builder(&al)
        .head_nodes(&["x"])
        .head_paths(&["p1", "p2"])
        .atom("x", "p1", "z")
        .atom("x", "p2", "w")
        .language("p1", "a+")
        .language("p2", "a+")
        .relation(builtin::equal_length(&al), &["p1", "p2"])
        .build()
        .unwrap();
    let config = EvalConfig { answer_limit: 10, ..cfg() };
    let results = eval::eval_with_paths(&q, &g, &config).unwrap();
    assert!(!results.is_empty());
    let nodes = results[0].nodes.clone();
    let automaton = answers::answer_automaton(&q, &g, &nodes, &config).unwrap();
    for ans in results.iter().filter(|a| a.nodes == nodes) {
        assert!(automaton.contains(&ans.paths));
    }
    // Perturb a witness: drop the last step of the second path so lengths differ.
    let mut bad = results[0].paths.clone();
    let shorter = Path::new(
        bad[1].nodes()[..bad[1].nodes().len() - 1].to_vec(),
        bad[1].label()[..bad[1].label().len() - 1].to_vec(),
    );
    bad[1] = shorter;
    if bad[1].len() != bad[0].len() {
        assert!(!automaton.contains(&bad));
    }
}

/// Boolean queries and constants: the ρ-query style "are these two specific
/// nodes related" form.
#[test]
fn boolean_queries_with_constants() {
    let mut g = GraphDb::empty();
    let a = g.add_named_node("a");
    let b = g.add_named_node("b");
    let c = g.add_named_node("c");
    g.add_edge_labeled(a, "r", b);
    g.add_edge_labeled(b, "r", c);
    let al = g.alphabet().clone();
    let reachable = |from: &str, to: &str| {
        Ecrpq::builder(&al)
            .atom("x", "p", "y")
            .language("p", "r+")
            .bind_node("x", from)
            .bind_node("y", to)
            .build()
            .unwrap()
    };
    assert!(eval::eval_boolean(&reachable("a", "c"), &g, &cfg()).unwrap());
    assert!(!eval::eval_boolean(&reachable("c", "a"), &g, &cfg()).unwrap());
    // Unknown constants surface as errors, not silent falsity.
    assert!(matches!(
        eval::eval_boolean(&reachable("a", "nonexistent"), &g, &cfg()),
        Err(QueryError::UnknownGraphNode(_))
    ));
}

/// Repetition of path variables (Proposition 6.8): a repeated path variable
/// forces a single path to satisfy all languages simultaneously.
#[test]
fn repeated_path_variables() {
    let g = generators::cycle_graph(6, "a");
    let al = g.alphabet().clone();
    // One path from node 0 whose length is divisible by 2 and by 3.
    let even = "(a a)+";
    let triple = "(a a a)+";
    let q = Ecrpq::builder(&al)
        .head_nodes(&["y1", "y2"])
        .atom("x", "p", "y1")
        .atom("x", "p", "y2")
        .language("p", even)
        .language("p", triple)
        .build()
        .unwrap();
    assert!(q.has_relational_repetition());
    assert!(q.has_regular_repetition());
    let answers = eval::eval_nodes(&q, &g, &cfg()).unwrap();
    // Both endpoints coincide (same path), and the shortest witness has
    // length 6, i.e. it wraps around the cycle back to the start.
    for a in &answers {
        assert_eq!(a[0], a[1]);
    }
    assert!(!answers.is_empty());
}

/// Budget exhaustion is reported as an error rather than a wrong answer.
#[test]
fn budget_exceeded_is_an_error() {
    let g = generators::random_graph(30, 2.5, &["a", "b"], 5);
    let al = g.alphabet().clone();
    let q = Ecrpq::builder(&al)
        .head_nodes(&["x", "y"])
        .atom("x", "p1", "z")
        .atom("z", "p2", "y")
        .relation(builtin::equal_length(&al), &["p1", "p2"])
        .build()
        .unwrap();
    let tiny = EvalConfig { max_search_states: 3, max_candidates: 1_000_000, ..cfg() };
    match eval::eval_nodes(&q, &g, &tiny) {
        Err(QueryError::BudgetExceeded { .. }) => {}
        Ok(answers) => {
            // On very small graphs the search may legitimately finish within
            // 3 states; accept that, but then answers must be non-trivial.
            assert!(!answers.is_empty());
        }
        Err(e) => panic!("unexpected error {e}"),
    }
}
