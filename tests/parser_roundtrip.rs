//! Parser property suite: seeded random queries round-trip through
//! `Display`, and the parser never panics on mutated input (fuzz smoke).
//!
//! The round-trip property is `parse → Display → parse` being the identity:
//! for a random textual query `t`, `d = parse(t).to_string()` is a fixpoint
//! (`parse(d).to_string() == d`) and the reparsed query is structurally
//! identical (same head, atoms, relation names, constraints, constants).

use ecrpq::prelude::*;
use ecrpq_integration::prop;

const CASES: usize = 120;

// The query generator itself lives in `ecrpq_integration::corpus` so the
// concurrency differential suite (`tests/concurrency.rs`) runs the exact
// same seeded corpus through the multi-threaded engine.
use ecrpq_integration::corpus::{alphabet, random_query_text};

/// Structural equality of two parsed queries (the pieces `Display` prints).
fn assert_structurally_equal(a: &Ecrpq, b: &Ecrpq, context: &str) {
    assert_eq!(a.head_nodes, b.head_nodes, "{context}: head nodes");
    assert_eq!(a.head_paths, b.head_paths, "{context}: head paths");
    assert_eq!(a.atoms, b.atoms, "{context}: atoms");
    assert_eq!(a.relations.len(), b.relations.len(), "{context}: relation count");
    for (ra, rb) in a.relations.iter().zip(&b.relations) {
        assert_eq!(ra.relation.name(), rb.relation.name(), "{context}: relation name");
        assert_eq!(ra.relation.arity(), rb.relation.arity(), "{context}: relation arity");
        assert_eq!(ra.paths, rb.paths, "{context}: relation paths");
    }
    assert_eq!(
        a.linear_constraints.len(),
        b.linear_constraints.len(),
        "{context}: constraint count"
    );
    for (ca, cb) in a.linear_constraints.iter().zip(&b.linear_constraints) {
        assert_eq!(ca.terms, cb.terms, "{context}: constraint terms");
        assert_eq!(ca.op, cb.op, "{context}: constraint op");
        assert_eq!(ca.constant, cb.constant, "{context}: constraint constant");
    }
    assert_eq!(a.node_constants, b.node_constants, "{context}: node constants");
}

#[test]
fn parse_display_parse_is_identity_on_random_queries() {
    let al = alphabet();
    prop::check(CASES, 0x9A25_0001, |g| {
        let text = random_query_text(g);
        let q1 = parse_query(&text, &al)
            .unwrap_or_else(|e| panic!("generated query must parse: {text:?}: {e}"));
        let d1 = q1.to_string();
        let q2 = parse_query(&d1, &al)
            .unwrap_or_else(|e| panic!("Display output must reparse: {d1:?}: {e}"));
        assert_eq!(d1, q2.to_string(), "Display must be a fixpoint for {text:?}");
        assert_structurally_equal(&q1, &q2, &format!("round-trip of {text:?}"));
    });
}

#[test]
fn parsed_and_reparsed_queries_evaluate_identically() {
    let al = alphabet();
    let cfg = EvalConfig { max_search_states: 100_000, ..EvalConfig::default() };
    prop::check(16, 0x9A25_0002, |g| {
        // Constant-free fragment so evaluation needs no named graph nodes.
        let mut text = random_query_text(g);
        while text.contains(" = :") {
            text = random_query_text(g);
        }
        let q1 = parse_query(&text, &al).unwrap();
        let q2 = parse_query(&q1.to_string(), &al).unwrap();
        let mut db = GraphDb::new(al.clone());
        let nodes = db.add_nodes(4);
        for _ in 0..g.range(2, 8) {
            let from = nodes[g.index(4)];
            let label = Symbol(g.index(3) as u32);
            let to = nodes[g.index(4)];
            db.add_edge(from, label, to);
        }
        let mut a1 = eval::eval_nodes(&q1, &db, &cfg).unwrap();
        let mut a2 = eval::eval_nodes(&q2, &db, &cfg).unwrap();
        a1.sort();
        a2.sort();
        assert_eq!(a1, a2, "reparsed query must evaluate identically for {text:?}");
    });
}

/// Fuzz smoke: the parser must return `Ok`/`Err`, never panic, on randomly
/// mutated query text (deletions, substitutions, token splices). Bounded
/// iterations, seeded — `scripts/check.sh` runs this as its parser fuzz
/// gate.
#[test]
fn fuzz_smoke_mutated_inputs_never_panic() {
    let al = alphabet();
    const SPLICES: [&str; 14] =
        [",", "(", ")", "<-", "=", ":", "*", "|", "<", ">", "L(", "R(p", "len(", "Ans"];
    prop::check(1000, 0x9A25_0003, |g| {
        let mut text = random_query_text(g);
        for _ in 0..g.range(0, 4) {
            match g.index(3) {
                0 if !text.is_empty() => {
                    // delete a random character
                    let at = g.index(text.len());
                    if text.is_char_boundary(at) {
                        text.remove(at);
                    }
                }
                1 => {
                    let at = g.index(text.len() + 1);
                    if text.is_char_boundary(at) {
                        text.insert_str(at, SPLICES[g.index(SPLICES.len())]);
                    }
                }
                _ => {
                    let at = g.index(text.len() + 1);
                    if text.is_char_boundary(at) {
                        text.insert(at, ['#', '§', '0', 'x', ' '][g.index(5)]);
                    }
                }
            }
        }
        // Must not panic; the verdict itself is irrelevant.
        let _ = parse_query(&text, &al);
    });
}

/// Truncation fuzz: every prefix of a valid query must parse or fail
/// cleanly — a cut-off input is the most common real-world parse error
/// (an interrupted pipe, a half-typed REPL line), and each one must carry a
/// span inside (or one past) the input it was given.
#[test]
fn every_prefix_of_a_valid_query_errors_with_an_in_bounds_span() {
    let al = alphabet();
    prop::check(40, 0x9A25_0004, |g| {
        let text = random_query_text(g);
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            if let Err(e) = parse_query(&text[..cut], &al) {
                assert!(
                    e.span.start <= cut && e.span.end <= cut + 1,
                    "span {}..{} escapes the {cut}-byte input {:?}",
                    e.span.start,
                    e.span.end,
                    &text[..cut]
                );
            }
        }
    });
}

/// Golden byte-span error messages for truncated inputs: the exact spans
/// and wording users see for a cut-off regex, a dangling `len(`, a dangling
/// relation atom, and friends. Pinned so error-reporting regressions show
/// up as a diff here, not as a support question.
#[test]
fn truncated_inputs_report_pinned_byte_span_errors() {
    let al = alphabet();
    let cases: [(&str, &str); 7] = [
        (
            // Cut-off regex: the error points one past the unclosed group.
            "Ans(x) <- (x, p, y), L(p) = (a|",
            "parse error at 30..31: in regular expression: expected `)`",
        ),
        (
            // Dangling `len(` constraint.
            "Ans(x) <- (x, p, y), len(",
            "parse error at 25..26: expected a path variable, found end of input",
        ),
        (
            // Constraint cut after an operator.
            "Ans(x) <- (x, p, y), len(p) - ",
            "parse error at 30..31: expected `len` or `count`, found end of input",
        ),
        (
            // Language atom with no regex at all: a zero-width span at EOF.
            "Ans(x) <- (x, p, y), L(p) = ",
            "parse error at 28..28: expected a regular expression",
        ),
        (
            // Relation atom cut inside its tape list.
            "Ans(x) <- (x, p, y), R(p",
            "parse error at 24..25: expected `)`, found end of input",
        ),
        (
            // Binding cut after the `:`.
            "Ans(x, y) <- (x, p, y), L(p) = a*, x = :",
            "parse error at 40..41: expected a node name, found end of input",
        ),
        (
            // Relational atom cut mid-tuple.
            "Ans(x) <- (x, p,",
            "parse error at 16..17: expected a node variable, found end of input",
        ),
    ];
    for (input, expected) in cases {
        let err = parse_query(input, &al)
            .expect_err(&format!("truncated input must not parse: {input:?}"));
        assert_eq!(err.to_string(), expected, "error text changed for {input:?}");
    }
}
