#!/usr/bin/env bash
# Offline-safe CI check: build, tests, formatting, lints.
# Usage: scripts/check.sh  (from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo
    echo "==> $*"
    "$@"
}

# --offline everywhere: the workspace has no external dependencies and the
# build environment has no network.
run cargo build --release --offline --workspace --all-targets
run cargo test -q --offline --workspace
run cargo fmt --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

echo
echo "All checks passed."
