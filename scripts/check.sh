#!/usr/bin/env bash
# Offline-safe CI check: build, tests, formatting, lints.
# Usage: scripts/check.sh [--bench-smoke]  (from anywhere inside the repo)
#
# --bench-smoke additionally runs the benchmark harness on the smallest size
# point of each experiment family (in a scratch directory), so bench bit-rot
# fails fast without paying for a full sweep.
set -euo pipefail

cd "$(dirname "$0")/.."

bench_smoke=0
for arg in "$@"; do
    case "$arg" in
        --bench-smoke) bench_smoke=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

run() {
    echo
    echo "==> $*"
    "$@"
}

# --offline everywhere: the workspace has no external dependencies and the
# build environment has no network.
run cargo build --release --offline --workspace --all-targets
run cargo test -q --offline --workspace
run cargo fmt --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

# Parser gates: the bounded seeded fuzz smoke (mutated query text must never
# panic the parser) plus the round-trip property suite, and the examples —
# which all parse textual queries now — must still run end to end.
run cargo test -q --offline -p ecrpq-integration --test parser_roundtrip
run cargo test -q --offline -p ecrpq-integration --test examples_smoke

if [[ "$bench_smoke" == 1 ]]; then
    repo_root=$(pwd)
    scratch=$(mktemp -d)
    trap 'rm -rf "$scratch"' EXIT
    echo
    echo "==> harness smoke run (smallest point of every experiment family)"
    (cd "$scratch" && "$repo_root/target/release/harness" smoke)
fi

echo
echo "All checks passed."
