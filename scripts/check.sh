#!/usr/bin/env bash
# Offline-safe CI check: build, tests, formatting, lints, server smoke.
# Usage: scripts/check.sh [--bench-smoke] [--bench-compare] [--server-smoke]
#                         [--parallel-smoke] [--storage-smoke]
#                         [--serve-load-smoke] [--metrics-smoke]
#                         [--mutation-smoke]
# (from anywhere inside the repo)
#
# The default sequence is build + tests + fmt + clippy + the parser and
# examples gates + the concurrency gate + the parallel differential gate
# (the frontier-parallel engine must be bit-identical to the sequential
# reference at 1/2/4/8 threads) + the server smoke (an ephemeral-port
# ecrpq-serve driven through load/prepare/run/stats/shutdown by ecrpq-cli,
# asserting that the second run of a prepared statement is a registry hit
# with zero sim-table compilations) + the storage smoke (save on one server,
# reopen on a fresh one, first run must be warm) + the serve-load smoke (a
# short open-loop burst through the legacy/pipelined/batch protocol shapes
# past the server's admission capacity; the harness asserts zero dropped
# replies and that client-observed rejections equal the server's admission
# counter) + the metrics smoke + the mutation smoke (add_edges/remove_edges
# on a live overlay: the delta must be visible to the very next run, which
# must stay a registry hit, and the remove must restore the pre-mutation
# answers bit for bit).
#
# --bench-smoke    additionally runs the benchmark harness on the smallest
#                  size point of each experiment family (in a scratch
#                  directory), so bench bit-rot fails fast without paying for
#                  a full sweep.
# --bench-compare  additionally runs the harness in quick mode with the
#                  --compare regression gate against the committed baseline
#                  (benchmarks/baseline/baseline.json): any shared
#                  (experiment, series, param) point that got >1.3x slower
#                  fails the check.
# --server-smoke   runs ONLY the release build and the server smoke gate —
#                  the fast iteration loop while working on the server crate.
# --parallel-smoke runs ONLY the tiny parallel differential gate (a handful
#                  of corpus queries at 4 threads vs the reference engine) —
#                  cheap enough for every PR, the fast loop while working on
#                  the parallel engine.
# --storage-smoke  runs ONLY the release build and the persistence smoke gate
#                  (one server saves a graph + prepared statement, a fresh
#                  server reopens the snapshot and its FIRST run must be a
#                  registry hit with zero sim-table compilations) — the fast
#                  loop while working on the storage layer. The same gate is
#                  part of the default sequence.
# --serve-load-smoke
#                  runs ONLY the release build and the serve-load smoke gate
#                  (harness serve-smoke in a scratch directory) — the fast
#                  loop while working on the pipelined serve path. The same
#                  gate is part of the default sequence.
# --metrics-smoke  runs ONLY the release build and the observability gate
#                  (server with --metrics-addr, warm query, `ecrpq-cli
#                  trace` whose client-side validation requires present,
#                  monotonic spans summing to within 10% of the recorded
#                  latency, then a /dev/tcp scrape of the exposition
#                  endpoint asserting the request histogram count equals the
#                  requests sent) — the fast loop while working on the
#                  metrics/tracing layer. The same gate is part of the
#                  default sequence.
# --mutation-smoke runs ONLY the release build and the live-graph gate
#                  (load -> prepare -> run, then add_edges must change the
#                  answers while the re-run stays a registry hit — the
#                  delta-maintained path, no rebind — and remove_edges must
#                  return the answers to exactly the pre-mutation set) —
#                  the fast loop while working on the mutation layer. The
#                  same gate is part of the default sequence.
set -euo pipefail

cd "$(dirname "$0")/.."
repo_root=$(pwd)

bench_smoke=0
bench_compare=0
server_smoke_only=0
parallel_smoke_only=0
storage_smoke_only=0
serve_load_smoke_only=0
metrics_smoke_only=0
mutation_smoke_only=0
for arg in "$@"; do
    case "$arg" in
        --bench-smoke) bench_smoke=1 ;;
        --bench-compare) bench_compare=1 ;;
        --server-smoke) server_smoke_only=1 ;;
        --parallel-smoke) parallel_smoke_only=1 ;;
        --storage-smoke) storage_smoke_only=1 ;;
        --serve-load-smoke) serve_load_smoke_only=1 ;;
        --metrics-smoke) metrics_smoke_only=1 ;;
        --mutation-smoke) mutation_smoke_only=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

run() {
    echo
    echo "==> $*"
    "$@"
}

# Single EXIT trap for everything that needs cleanup (scratch dirs, a still
# running smoke server).
scratch=""
server_pid=""
cleanup() {
    if [[ -n "$server_pid" ]]; then kill "$server_pid" 2>/dev/null || true; fi
    if [[ -n "$scratch" ]]; then rm -rf "$scratch"; fi
}
trap cleanup EXIT

# Starts target/release/ecrpq-serve on an ephemeral port logging to $1,
# leaving the pid in $server_pid and the bound address in $server_addr.
# (Deliberately not a command substitution: $server_pid must reach the
# parent shell so the EXIT trap can kill a half-started server.)
server_addr=""
start_server() {
    local log=$1
    shift
    "$repo_root/target/release/ecrpq-serve" --addr 127.0.0.1:0 --workers 4 "$@" > "$log" &
    server_pid=$!
    server_addr=""
    for _ in $(seq 1 100); do
        server_addr=$(sed -n 's/^listening on //p' "$log")
        if [[ -n "$server_addr" ]]; then break; fi
        sleep 0.05
    done
    if [[ -z "$server_addr" ]]; then
        echo "smoke FAILED: ecrpq-serve never reported its address" >&2
        exit 1
    fi
    echo "    server at $server_addr"
}

# Starts an ephemeral-port server, walks it through the whole statement
# lifecycle with the CLI, and asserts the warm-cache invariants.
server_smoke() {
    echo
    echo "==> server smoke (load/prepare/run/stats/shutdown over loopback TCP)"
    local cli="$repo_root/target/release/ecrpq-cli"
    local log addr
    log=$(mktemp)
    start_server "$log"
    addr=$server_addr

    "$cli" --addr "$addr" load g cycle:8:a
    "$cli" --addr "$addr" prepare q 'Ans(x, y) <- (x, p, y), L(p) = a a' g
    "$cli" --addr "$addr" run q g > /dev/null   # cold run: binds + compiles
    local second
    second=$("$cli" --addr "$addr" run q g)
    echo "$second"
    if ! grep -q '"registry":"hit"' <<< "$second"; then
        echo "server smoke FAILED: second run must be a registry cache hit" >&2
        exit 1
    fi
    if ! grep -q '"sim_cache_misses":0' <<< "$second"; then
        echo "server smoke FAILED: second run must not compile sim tables" >&2
        exit 1
    fi
    "$cli" --addr "$addr" stats
    "$cli" --addr "$addr" shutdown
    wait "$server_pid"
    server_pid=""
    rm -f "$log"
    echo "    server smoke OK (second run: registry hit, sim_cache_misses=0)"
}

# Persistence gate: one server saves a graph plus a prepared statement; a
# brand-new server reopens the snapshot and its FIRST run must already be a
# registry hit that compiles nothing — proving the snapshot and the
# compiled-artifact sidecar actually carry the warm state across processes.
storage_smoke() {
    echo
    echo "==> storage smoke (save -> fresh server reopen -> warm first run)"
    local cli="$repo_root/target/release/ecrpq-cli"
    local dir log1 log2 snap
    dir=$(mktemp -d)
    snap="$dir/g.snap"

    log1=$(mktemp)
    start_server "$log1"
    "$cli" --addr "$server_addr" load g cycle:12:a
    "$cli" --addr "$server_addr" prepare q 'Ans(x, y) <- (x, p, y), L(p) = a a' g
    "$cli" --addr "$server_addr" run q g > /dev/null   # bind + compile, so save persists warm state
    "$cli" --addr "$server_addr" save g "$snap"
    "$cli" --addr "$server_addr" shutdown
    wait "$server_pid"
    server_pid=""

    log2=$(mktemp)
    start_server "$log2"
    "$cli" --addr "$server_addr" open g2 "$snap"
    local first
    first=$("$cli" --addr "$server_addr" run q g2)
    echo "$first"
    if ! grep -q '"registry":"hit"' <<< "$first"; then
        echo "storage smoke FAILED: first run after open must be a registry hit" >&2
        exit 1
    fi
    if ! grep -q '"sim_cache_misses":0' <<< "$first"; then
        echo "storage smoke FAILED: first run after open must not compile sim tables" >&2
        exit 1
    fi
    "$cli" --addr "$server_addr" shutdown
    wait "$server_pid"
    server_pid=""
    rm -rf "$dir"
    rm -f "$log1" "$log2"
    echo "    storage smoke OK (first run after reopen: registry hit, sim_cache_misses=0)"
}

# Observability gate: trace spans must be present and monotonic with phase
# durations reconciling against the server-recorded latency (the CLI's
# `trace` command validates all of that client-side and exits nonzero on
# violation), and the exposition endpoint's request histogram must
# reconcile exactly with the requests this gate sent.
metrics_smoke() {
    echo
    echo "==> metrics smoke (trace validation + exposition scrape reconciliation)"
    local cli="$repo_root/target/release/ecrpq-cli"
    local log metrics_addr scrape
    log=$(mktemp)
    start_server "$log" --metrics-addr 127.0.0.1:0 --slow-query-ms 1000
    metrics_addr=$(sed -n 's/^metrics on //p' "$log")
    if [[ -z "$metrics_addr" ]]; then
        echo "metrics smoke FAILED: server never reported the metrics address" >&2
        exit 1
    fi
    echo "    metrics endpoint at $metrics_addr"

    "$cli" --addr "$server_addr" load g cycle:8:a > /dev/null
    "$cli" --addr "$server_addr" prepare q 'Ans(x, y) <- (x, p, y), L(p) = a a' g > /dev/null
    "$cli" --addr "$server_addr" run q g > /dev/null    # cold: bind + compile
    "$cli" --addr "$server_addr" run q g > /dev/null    # warm
    # Renders the span tree on stderr; exits nonzero unless spans are
    # present, monotonic, and sum to within 10% of the recorded latency.
    "$cli" --addr "$server_addr" trace q g > /dev/null
    # Scrape the exposition endpoint over plain TCP — bash's /dev/tcp, no
    # nc dependency; the server dumps the registry and closes.
    scrape=$(exec 3<>"/dev/tcp/${metrics_addr%:*}/${metrics_addr#*:}" && cat <&3)
    if ! grep -q '^ecrpq_request_us_count{op="run"} 2$' <<< "$scrape"; then
        echo "metrics smoke FAILED: run histogram count must equal the 2 runs sent" >&2
        grep '^ecrpq_request_us_count' <<< "$scrape" >&2 || true
        exit 1
    fi
    if ! grep -q '^ecrpq_request_us_count{op="trace"} 1$' <<< "$scrape"; then
        echo "metrics smoke FAILED: trace histogram count must equal the 1 trace sent" >&2
        exit 1
    fi
    "$cli" --addr "$server_addr" shutdown > /dev/null
    wait "$server_pid"
    server_pid=""
    rm -f "$log"
    echo "    metrics smoke OK (trace consistent, scrape reconciles: run=2 trace=1)"
}

# Live-graph gate: mutations must be visible to the very next run without
# losing the warm registry state, and a remove must restore the pre-mutation
# answers bit for bit. The answers portion of a run reply is everything
# between the `answers` key and the trailing `stats` object — latency fields
# vary run to run, the answer rows must not.
answers_of() {
    sed 's/.*"answers"://; s/,"stats".*//' <<< "$1"
}

mutation_smoke() {
    echo
    echo "==> mutation smoke (add_edges/remove_edges round-trip on a live overlay)"
    local cli="$repo_root/target/release/ecrpq-cli"
    local log before after reverted
    log=$(mktemp)
    start_server "$log"

    "$cli" --addr "$server_addr" load g cycle:6:a
    "$cli" --addr "$server_addr" prepare q 'Ans(x, y) <- (x, p, y), L(p) = a a' g
    before=$("$cli" --addr "$server_addr" run q g)

    "$cli" --addr "$server_addr" add-edges g n0 a n3
    after=$("$cli" --addr "$server_addr" run q g)
    echo "$after"
    if ! grep -q '"registry":"hit"' <<< "$after"; then
        echo "mutation smoke FAILED: the run after add_edges must stay a registry hit" >&2
        exit 1
    fi
    if [[ "$(answers_of "$before")" == "$(answers_of "$after")" ]]; then
        echo "mutation smoke FAILED: add_edges must change the answers" >&2
        exit 1
    fi

    "$cli" --addr "$server_addr" remove-edges g n0 a n3
    reverted=$("$cli" --addr "$server_addr" run q g)
    if [[ "$(answers_of "$reverted")" != "$(answers_of "$before")" ]]; then
        echo "mutation smoke FAILED: remove_edges must restore the pre-mutation answers" >&2
        echo "  before:   $(answers_of "$before")" >&2
        echo "  reverted: $(answers_of "$reverted")" >&2
        exit 1
    fi

    "$cli" --addr "$server_addr" shutdown
    wait "$server_pid"
    server_pid=""
    rm -f "$log"
    echo "    mutation smoke OK (delta visible + registry hit, remove restores answers)"
}

if [[ "$mutation_smoke_only" == 1 ]]; then
    run cargo build --release --offline -p ecrpq-server
    mutation_smoke
    echo
    echo "Mutation smoke passed."
    exit 0
fi

if [[ "$metrics_smoke_only" == 1 ]]; then
    run cargo build --release --offline -p ecrpq-server
    metrics_smoke
    echo
    echo "Metrics smoke passed."
    exit 0
fi

if [[ "$server_smoke_only" == 1 ]]; then
    run cargo build --release --offline -p ecrpq-server
    server_smoke
    echo
    echo "Server smoke passed."
    exit 0
fi

if [[ "$storage_smoke_only" == 1 ]]; then
    run cargo build --release --offline -p ecrpq-server
    storage_smoke
    echo
    echo "Storage smoke passed."
    exit 0
fi

# Serve-load gate: a short open-loop burst through all three protocol shapes
# (legacy single-request, pipelined tagged, batch) with more connections than
# admission slots. The harness itself asserts zero dropped replies, no
# duplicate reply ids, and rejection-accounting consistency (clients'
# observed rejections == the server's `rejected` counter delta); any
# violation panics and fails the gate.
serve_load_smoke() {
    if [[ -z "$scratch" ]]; then scratch=$(mktemp -d); fi
    echo
    echo "==> serve-load smoke (open-loop burst: legacy vs pipelined vs batch)"
    (cd "$scratch" && "$repo_root/target/release/harness" serve-smoke > /dev/null)
    echo "    serve-load smoke OK (zero reply loss, admission accounting consistent)"
}

if [[ "$serve_load_smoke_only" == 1 ]]; then
    run cargo build --release --offline -p ecrpq-bench
    serve_load_smoke
    echo
    echo "Serve-load smoke passed."
    exit 0
fi

if [[ "$parallel_smoke_only" == 1 ]]; then
    run cargo test -q --offline -p ecrpq-integration --test parallel_differential \
        parallel_smoke_tiny_corpus
    echo
    echo "Parallel smoke passed."
    exit 0
fi

# --offline everywhere: the workspace has no external dependencies and the
# build environment has no network.
run cargo build --release --offline --workspace --all-targets
run cargo test -q --offline --workspace
run cargo fmt --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

# Parser gates: the bounded seeded fuzz smoke (mutated query text must never
# panic the parser) plus the round-trip property suite, and the examples —
# which all parse textual queries now — must still run end to end.
run cargo test -q --offline -p ecrpq-integration --test parser_roundtrip
run cargo test -q --offline -p ecrpq-integration --test examples_smoke

# Concurrency gate: the threaded corpus must match the single-threaded
# reference engine (answers, verified counts, cache counters).
run cargo test -q --offline -p ecrpq-integration --test concurrency

# Parallel differential gate: the frontier-parallel engine must be
# bit-identical to the sequential engines at every thread count — answers
# (witnesses included), verified counts, membership verdicts, and answer
# automata.
run cargo test -q --offline -p ecrpq-integration --test parallel_differential

# Planner differential gate: the cost-based planner may reorder joins, flip
# BFS directions, and pin constants, but answers and verified counts must
# match the static plan and the reference engine everywhere — and the
# EXPLAIN goldens must not drift.
run cargo test -q --offline -p ecrpq-integration --test planner_differential

# Server smoke is part of the default sequence: the binaries must round-trip
# the full statement lifecycle over real TCP, not just in unit tests.
server_smoke

# Storage smoke is part of the default sequence too: persistence must carry
# warm compiled state across server processes, not just within one.
storage_smoke

# Serve-load smoke is part of the default sequence too: the pipelined serve
# path must deliver every reply exactly once under admission pressure.
serve_load_smoke

# Metrics smoke is part of the default sequence too: the observability
# surface must stay scrapeable and its trace/histogram accounting honest.
metrics_smoke

# Mutation smoke is part of the default sequence too: live-graph writes must
# be visible to the next run without cold rebinds, and reversible.
mutation_smoke

if [[ "$bench_smoke" == 1 ]]; then
    scratch=$(mktemp -d)
    echo
    echo "==> harness smoke run (smallest point of every experiment family)"
    (cd "$scratch" && "$repo_root/target/release/harness" smoke)
fi

if [[ "$bench_compare" == 1 ]]; then
    if [[ -z "$scratch" ]]; then scratch=$(mktemp -d); fi
    echo
    echo "==> harness regression gate (quick mode vs committed baseline)"
    (cd "$scratch" && "$repo_root/target/release/harness" quick \
        --compare "$repo_root/benchmarks/baseline/baseline.json")
fi

echo
echo "All checks passed."
