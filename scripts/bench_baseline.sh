#!/usr/bin/env bash
# Records a benchmark baseline for the regression gate.
#
# Runs the full harness in a scratch directory and writes the combined
# baseline document to benchmarks/baseline/baseline.json (committed to the
# repository so `harness --compare` has something to diff against).
#
# Usage:
#   scripts/bench_baseline.sh [mode] [out.json]
#     mode      full (default) | quick | smoke | prepared
#               (`prepared` records only the prepared-query pipeline family —
#               compile/run split + the prepared_reuse micro-family — for a
#               focused baseline while iterating on the compile path)
#     out.json  defaults to benchmarks/baseline/baseline.json
#
# Compare a fresh run against the recorded baseline with:
#   cargo run --release --offline -p ecrpq-bench --bin harness -- \
#       --compare benchmarks/baseline/baseline.json
set -euo pipefail

cd "$(dirname "$0")/.."
repo_root=$(pwd)

mode="${1:-full}"
# Partial modes must not clobber the full committed baseline: a prepared-only
# (or smoke/quick) document would silently vacate the regression gate for
# every other experiment family. Default them to sibling files instead.
case "$mode" in
    full) default_out="benchmarks/baseline/baseline.json" ;;
    *) default_out="benchmarks/baseline/baseline_${mode}.json" ;;
esac
out="${2:-$default_out}"
case "$out" in
    /*) abs_out="$out" ;;
    *) abs_out="$repo_root/$out" ;;
esac

echo "==> building the harness (release)"
cargo build --release --offline -p ecrpq-bench --bin harness

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
echo "==> running the harness (mode: $mode) in $scratch"
(cd "$scratch" && "$repo_root/target/release/harness" "$mode" --baseline "$abs_out")

echo "==> baseline written to $out"
