#!/usr/bin/env bash
# Records a benchmark baseline for the regression gate.
#
# Runs the full harness in a scratch directory and writes the combined
# baseline document to benchmarks/baseline/baseline.json (committed to the
# repository so `harness --compare` has something to diff against).
#
# Usage:
#   scripts/bench_baseline.sh [mode] [out.json]
#     mode      full (default) | quick | smoke
#     out.json  defaults to benchmarks/baseline/baseline.json
#
# Compare a fresh run against the recorded baseline with:
#   cargo run --release --offline -p ecrpq-bench --bin harness -- \
#       --compare benchmarks/baseline/baseline.json
set -euo pipefail

cd "$(dirname "$0")/.."
repo_root=$(pwd)

mode="${1:-full}"
out="${2:-benchmarks/baseline/baseline.json}"
case "$out" in
    /*) abs_out="$out" ;;
    *) abs_out="$repo_root/$out" ;;
esac

echo "==> building the harness (release)"
cargo build --release --offline -p ecrpq-bench --bin harness

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
echo "==> running the harness (mode: $mode) in $scratch"
(cd "$scratch" && "$repo_root/target/release/harness" "$mode" --baseline "$abs_out")

echo "==> baseline written to $out"
